//! The append-only segment writer and the segment usage table.
//!
//! [`SegmentWriter`] packs dirty byte ranges into on-disk segments: whole
//! 4 KB data blocks, one 4 KB metadata block per file per segment, and a
//! 512-byte summary block (Figure 7). It can either write everything it is
//! given (an fsync or timeout flush) or emit only the naturally full
//! segments and hand the remainder back (normal log operation).
//!
//! [`SegmentUsage`] tracks which segment currently holds each live block,
//! so overwrites and deletes leave dead space behind for the
//! [cleaner](crate::cleaner) to reclaim.

use std::collections::{BTreeMap, BTreeSet};

use nvfs_types::{blocks_of_range, BlockId, FileId, RangeSet, SimTime};

use crate::layout::{SegmentCause, SegmentRecord, METADATA_BLOCK_BYTES, SUMMARY_BYTES};

/// Chunks of dirty data handed to the writer: per-file byte ranges.
pub type Chunks = Vec<(FileId, RangeSet)>;

/// Where every live block lives, and how much live data each segment holds.
#[derive(Debug, Clone, Default)]
pub struct SegmentUsage {
    locs: BTreeMap<BlockId, u64>,
    segs: BTreeMap<u64, BTreeSet<BlockId>>,
}

impl SegmentUsage {
    /// Creates an empty table.
    pub fn new() -> Self {
        SegmentUsage::default()
    }

    /// Records that `block` now lives in segment `seg`, killing any older
    /// copy.
    pub fn place(&mut self, block: BlockId, seg: u64) {
        if let Some(old) = self.locs.insert(block, seg) {
            if let Some(set) = self.segs.get_mut(&old) {
                set.remove(&block);
            }
        }
        self.segs.entry(seg).or_default().insert(block);
    }

    /// Kills every live block of `file` (the file was deleted).
    pub fn kill_file(&mut self, file: FileId) {
        let blocks: Vec<BlockId> = self
            .locs
            .range(BlockId::new(file, 0)..BlockId::new(FileId(file.0 + 1), 0))
            .map(|(&b, _)| b)
            .collect();
        for b in blocks {
            if let Some(seg) = self.locs.remove(&b) {
                if let Some(set) = self.segs.get_mut(&seg) {
                    set.remove(&b);
                }
            }
        }
    }

    /// Live bytes in segment `seg`.
    pub fn live_bytes(&self, seg: u64) -> u64 {
        self.segs.get(&seg).map_or(0, |s| s.len() as u64 * 4096)
    }

    /// Number of segments on disk (live or dead-but-unreclaimed).
    pub fn segment_count(&self) -> usize {
        self.segs.len()
    }

    /// The `n` segments with the least live data (the cleaner's victims).
    pub fn least_utilized(&self, n: usize) -> Vec<u64> {
        let mut segs: Vec<(u64, usize)> = self.segs.iter().map(|(&id, s)| (id, s.len())).collect();
        segs.sort_by_key(|&(id, live)| (live, id));
        segs.into_iter().take(n).map(|(id, _)| id).collect()
    }

    /// Removes segment `seg` from the table, returning its live blocks.
    pub fn evacuate(&mut self, seg: u64) -> Vec<BlockId> {
        let blocks: Vec<BlockId> = self
            .segs
            .remove(&seg)
            .map(|s| s.into_iter().collect())
            .unwrap_or_default();
        for b in &blocks {
            self.locs.remove(b);
        }
        blocks
    }

    /// Total live bytes across all segments.
    pub fn total_live_bytes(&self) -> u64 {
        self.locs.len() as u64 * 4096
    }
}

/// Packs dirty chunks into segments and appends them to the log.
#[derive(Debug, Clone)]
pub struct SegmentWriter {
    segment_bytes: u64,
    next_id: u64,
    records: Vec<SegmentRecord>,
    usage: SegmentUsage,
}

/// An in-progress segment during packing.
#[derive(Debug, Default)]
struct OpenSegment {
    blocks: Vec<BlockId>,
    files: BTreeSet<FileId>,
}

impl OpenSegment {
    fn data_bytes(&self) -> u64 {
        self.blocks.len() as u64 * 4096
    }

    fn on_disk_with(&self, extra_file: bool) -> u64 {
        let files = self.files.len() as u64 + u64::from(extra_file);
        self.data_bytes() + 4096 + files.max(1) * METADATA_BLOCK_BYTES + SUMMARY_BYTES
    }
}

impl SegmentWriter {
    /// Creates a writer for segments of `segment_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `segment_bytes` cannot hold at least one data block plus
    /// its metadata and summary.
    pub fn new(segment_bytes: u64) -> Self {
        assert!(
            segment_bytes >= 4096 + METADATA_BLOCK_BYTES + SUMMARY_BYTES,
            "segment size too small"
        );
        SegmentWriter {
            segment_bytes,
            next_id: 0,
            records: Vec::new(),
            usage: SegmentUsage::new(),
        }
    }

    /// Segments written so far.
    pub fn records(&self) -> &[SegmentRecord] {
        &self.records
    }

    /// The usage table (for the cleaner).
    pub fn usage(&self) -> &SegmentUsage {
        &self.usage
    }

    /// Mutable usage table (deletes kill blocks).
    pub fn usage_mut(&mut self) -> &mut SegmentUsage {
        &mut self.usage
    }

    /// Writes **all** of `chunks` to the log. Naturally full segments get
    /// [`SegmentCause::Full`] (unless `uniform_cause` is set); the final,
    /// usually partial, segment gets `cause`. Returns the number of
    /// segments written.
    pub fn write_all(
        &mut self,
        t: SimTime,
        chunks: &Chunks,
        cause: SegmentCause,
        uniform_cause: bool,
    ) -> usize {
        let (written, remainder) = self.pack(t, chunks, Some((cause, uniform_cause)));
        debug_assert!(remainder.is_none());
        written
    }

    /// Writes only the naturally full segments that `chunks` can fill,
    /// returning the remainder (less than one segment's worth) to the
    /// caller. Returns `(segments_written, remainder)`.
    pub fn write_full_only(&mut self, t: SimTime, chunks: &Chunks) -> (usize, Chunks) {
        let (written, remainder) = self.pack(t, chunks, None);
        (written, remainder.unwrap_or_default())
    }

    /// Core packing loop. With `final_cause = Some(..)` everything is
    /// flushed; with `None` the tail remainder is returned instead.
    fn pack(
        &mut self,
        t: SimTime,
        chunks: &Chunks,
        final_cause: Option<(SegmentCause, bool)>,
    ) -> (usize, Option<Chunks>) {
        // Deduplicate to whole blocks per file.
        let mut per_file: BTreeMap<FileId, BTreeSet<u64>> = BTreeMap::new();
        for (file, ranges) in chunks {
            let set = per_file.entry(*file).or_default();
            for r in ranges.iter() {
                for b in blocks_of_range(*file, r) {
                    set.insert(b.index);
                }
            }
        }

        let mut open = OpenSegment::default();
        let mut written = 0;
        let uniform = final_cause;
        for (file, blocks) in &per_file {
            for &idx in blocks {
                let adds_file = !open.files.contains(file);
                if !open.blocks.is_empty() && open.on_disk_with(adds_file) > self.segment_bytes {
                    let cause = match uniform {
                        Some((c, true)) => c,
                        _ => SegmentCause::Full,
                    };
                    self.emit(t, std::mem::take(&mut open), cause);
                    written += 1;
                }
                open.blocks.push(BlockId::new(*file, idx));
                open.files.insert(*file);
            }
        }

        if open.blocks.is_empty() {
            return (written, None);
        }
        match final_cause {
            Some((cause, _)) => {
                // A final chunk that leaves no room for another block is
                // Full. `on_disk_with` already budgets one incoming block.
                let cause = if open.on_disk_with(false) > self.segment_bytes {
                    SegmentCause::Full
                } else {
                    cause
                };
                self.emit(t, open, cause);
                (written + 1, None)
            }
            None => {
                // Hand the tail back as chunks.
                let mut rem: BTreeMap<FileId, RangeSet> = BTreeMap::new();
                for b in open.blocks {
                    rem.entry(b.file).or_default().insert(b.byte_range());
                }
                (written, Some(rem.into_iter().collect()))
            }
        }
    }

    fn emit(&mut self, t: SimTime, seg: OpenSegment, cause: SegmentCause) {
        let id = self.next_id;
        self.next_id += 1;
        for b in &seg.blocks {
            self.usage.place(*b, id);
        }
        let record = SegmentRecord {
            id,
            time: t,
            cause,
            data_bytes: seg.data_bytes(),
            file_count: seg.files.len(),
        };
        nvfs_obs::counter_add("lfs.segments_written", 1);
        nvfs_obs::counter_add("lfs.data_bytes", record.data_bytes);
        if record.is_partial() {
            nvfs_obs::counter_add("lfs.segments_partial", 1);
        }
        nvfs_obs::histogram_record(
            "lfs.segment_fill_pct",
            record.on_disk_bytes() * 100 / self.segment_bytes.max(1),
        );
        nvfs_obs::event("seg_write", t.as_micros())
            .str("cause", cause.label())
            .u64("seg", id)
            .u64("data_bytes", record.data_bytes)
            .u64("files", record.file_count as u64)
            .u64("partial", record.is_partial() as u64)
            .emit();
        self.records.push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::SEGMENT_BYTES;
    use nvfs_types::ByteRange;

    fn chunk(file: u32, bytes: u64) -> (FileId, RangeSet) {
        (FileId(file), RangeSet::from_range(ByteRange::new(0, bytes)))
    }

    #[test]
    fn small_flush_is_one_partial_segment() {
        let mut w = SegmentWriter::new(SEGMENT_BYTES);
        let n = w.write_all(
            SimTime::ZERO,
            &vec![chunk(0, 8192)],
            SegmentCause::Fsync,
            false,
        );
        assert_eq!(n, 1);
        let r = w.records()[0];
        assert_eq!(r.cause, SegmentCause::Fsync);
        assert_eq!(r.data_bytes, 8192);
        assert!(r.is_partial());
    }

    #[test]
    fn large_flush_splits_into_full_segments() {
        let mut w = SegmentWriter::new(SEGMENT_BYTES);
        // ~1.2 MB -> 2 full + 1 partial.
        let n = w.write_all(
            SimTime::ZERO,
            &vec![chunk(0, 1_258_291)],
            SegmentCause::Timeout,
            false,
        );
        assert_eq!(n, 3);
        let causes: Vec<SegmentCause> = w.records().iter().map(|r| r.cause).collect();
        assert_eq!(
            causes,
            vec![
                SegmentCause::Full,
                SegmentCause::Full,
                SegmentCause::Timeout
            ]
        );
        for r in &w.records()[..2] {
            assert!(!r.is_partial(), "intermediate segments are full");
        }
    }

    #[test]
    fn write_full_only_returns_remainder() {
        let mut w = SegmentWriter::new(SEGMENT_BYTES);
        let (n, rem) = w.write_full_only(SimTime::ZERO, &vec![chunk(0, 700 * 1024)]);
        assert_eq!(n, 1);
        let rem_bytes: u64 = rem.iter().map(|(_, r)| r.len_bytes()).sum();
        // Every block is either on disk or in the remainder.
        let seg_data = w.records()[0].data_bytes;
        assert!(!w.records()[0].is_partial());
        assert_eq!(rem_bytes + seg_data, 700 * 1024);
    }

    #[test]
    fn partial_blocks_round_to_whole_blocks() {
        let mut w = SegmentWriter::new(SEGMENT_BYTES);
        w.write_all(
            SimTime::ZERO,
            &vec![chunk(0, 100)],
            SegmentCause::Fsync,
            false,
        );
        assert_eq!(w.records()[0].data_bytes, 4096);
    }

    #[test]
    fn metadata_counts_distinct_files() {
        let mut w = SegmentWriter::new(SEGMENT_BYTES);
        w.write_all(
            SimTime::ZERO,
            &vec![chunk(0, 4096), chunk(1, 4096), chunk(2, 4096)],
            SegmentCause::Timeout,
            false,
        );
        let r = w.records()[0];
        assert_eq!(r.file_count, 3);
        assert_eq!(r.metadata_bytes(), 3 * METADATA_BLOCK_BYTES);
    }

    #[test]
    fn usage_tracks_overwrites_and_deletes() {
        let mut w = SegmentWriter::new(SEGMENT_BYTES);
        w.write_all(
            SimTime::ZERO,
            &vec![chunk(0, 16384)],
            SegmentCause::Timeout,
            false,
        );
        let first = w.records()[0].id;
        assert_eq!(w.usage().live_bytes(first), 16384);
        // Rewrite the same blocks: the old segment's data dies.
        w.write_all(
            SimTime::from_secs(1),
            &vec![chunk(0, 16384)],
            SegmentCause::Timeout,
            false,
        );
        assert_eq!(w.usage().live_bytes(first), 0);
        let second = w.records()[1].id;
        assert_eq!(w.usage().live_bytes(second), 16384);
        w.usage_mut().kill_file(FileId(0));
        assert_eq!(w.usage().total_live_bytes(), 0);
    }

    #[test]
    fn least_utilized_orders_by_live_data() {
        let mut w = SegmentWriter::new(SEGMENT_BYTES);
        w.write_all(
            SimTime::ZERO,
            &vec![chunk(0, 16384)],
            SegmentCause::Timeout,
            false,
        );
        w.write_all(
            SimTime::ZERO,
            &vec![chunk(1, 4096)],
            SegmentCause::Timeout,
            false,
        );
        let victims = w.usage().least_utilized(1);
        assert_eq!(victims, vec![w.records()[1].id]);
        let blocks = w.usage_mut().evacuate(victims[0]);
        assert_eq!(blocks.len(), 1);
    }

    #[test]
    fn uniform_cause_marks_cleaner_segments() {
        let mut w = SegmentWriter::new(SEGMENT_BYTES);
        w.write_all(
            SimTime::ZERO,
            &vec![chunk(0, 1 << 20)],
            SegmentCause::Cleaner,
            true,
        );
        assert!(w.records().iter().all(|r| r.cause == SegmentCause::Cleaner));
    }
}
