//! The append-only segment writer and the segment usage table.
//!
//! [`SegmentWriter`] packs dirty byte ranges into on-disk segments: whole
//! 4 KB data blocks, one 4 KB metadata block per file per segment, and a
//! 512-byte summary block (Figure 7). It can either write everything it is
//! given (an fsync or timeout flush) or emit only the naturally full
//! segments and hand the remainder back (normal log operation).
//!
//! [`SegmentUsage`] tracks which segment currently holds each live block,
//! so overwrites and deletes leave dead space behind for the
//! [cleaner](crate::cleaner) to reclaim.

use std::collections::{BTreeMap, BTreeSet};

use nvfs_types::{blocks_of_range, BlockId, FileId, RangeSet, SimTime};

use crate::layout::{SegmentCause, SegmentRecord, METADATA_BLOCK_BYTES, SUMMARY_BYTES};

/// Chunks of dirty data handed to the writer: per-file byte ranges.
pub type Chunks = Vec<(FileId, RangeSet)>;

/// Where every live block lives, and how much live data each segment holds.
#[derive(Debug, Clone, Default)]
pub struct SegmentUsage {
    locs: BTreeMap<BlockId, u64>,
    segs: BTreeMap<u64, BTreeSet<BlockId>>,
}

impl SegmentUsage {
    /// Creates an empty table.
    pub fn new() -> Self {
        SegmentUsage::default()
    }

    /// Records that `block` now lives in segment `seg`, killing any older
    /// copy.
    pub fn place(&mut self, block: BlockId, seg: u64) {
        if let Some(old) = self.locs.insert(block, seg) {
            if let Some(set) = self.segs.get_mut(&old) {
                set.remove(&block);
            }
        }
        self.segs.entry(seg).or_default().insert(block);
    }

    /// Kills every live block of `file` (the file was deleted).
    pub fn kill_file(&mut self, file: FileId) {
        let blocks: Vec<BlockId> = self
            .locs
            .range(BlockId::new(file, 0)..BlockId::new(FileId(file.0 + 1), 0))
            .map(|(&b, _)| b)
            .collect();
        for b in blocks {
            if let Some(seg) = self.locs.remove(&b) {
                if let Some(set) = self.segs.get_mut(&seg) {
                    set.remove(&b);
                }
            }
        }
    }

    /// Live bytes in segment `seg`.
    pub fn live_bytes(&self, seg: u64) -> u64 {
        self.segs.get(&seg).map_or(0, |s| s.len() as u64 * 4096)
    }

    /// Number of segments on disk (live or dead-but-unreclaimed).
    pub fn segment_count(&self) -> usize {
        self.segs.len()
    }

    /// The `n` segments with the least live data (the cleaner's victims).
    pub fn least_utilized(&self, n: usize) -> Vec<u64> {
        let mut segs: Vec<(u64, usize)> = self.segs.iter().map(|(&id, s)| (id, s.len())).collect();
        segs.sort_by_key(|&(id, live)| (live, id));
        segs.into_iter().take(n).map(|(id, _)| id).collect()
    }

    /// Removes segment `seg` from the table, returning its live blocks.
    pub fn evacuate(&mut self, seg: u64) -> Vec<BlockId> {
        let blocks: Vec<BlockId> = self
            .segs
            .remove(&seg)
            .map(|s| s.into_iter().collect())
            .unwrap_or_default();
        for b in &blocks {
            self.locs.remove(b);
        }
        blocks
    }

    /// Total live bytes across all segments.
    pub fn total_live_bytes(&self) -> u64 {
        self.locs.len() as u64 * 4096
    }

    /// Every live byte range on disk, grouped per file — the durability
    /// oracle's view of what a post-crash scan of the log would find.
    pub fn live_ranges(&self) -> Vec<(FileId, RangeSet)> {
        let mut per_file: BTreeMap<FileId, RangeSet> = BTreeMap::new();
        for b in self.locs.keys() {
            per_file.entry(b.file).or_default().insert(b.byte_range());
        }
        per_file.into_iter().collect()
    }
}

/// Packs dirty chunks into segments and appends them to the log.
#[derive(Debug, Clone)]
pub struct SegmentWriter {
    segment_bytes: u64,
    next_id: u64,
    records: Vec<SegmentRecord>,
    usage: SegmentUsage,
}

/// An in-progress segment during packing.
#[derive(Debug, Default)]
struct OpenSegment {
    blocks: Vec<BlockId>,
    files: BTreeSet<FileId>,
}

impl OpenSegment {
    fn data_bytes(&self) -> u64 {
        self.blocks.len() as u64 * 4096
    }

    fn on_disk_with(&self, extra_file: bool) -> u64 {
        let files = self.files.len() as u64 + u64::from(extra_file);
        self.data_bytes() + 4096 + files.max(1) * METADATA_BLOCK_BYTES + SUMMARY_BYTES
    }
}

impl SegmentWriter {
    /// Creates a writer for segments of `segment_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `segment_bytes` cannot hold at least one data block plus
    /// its metadata and summary.
    pub fn new(segment_bytes: u64) -> Self {
        assert!(
            segment_bytes >= 4096 + METADATA_BLOCK_BYTES + SUMMARY_BYTES,
            "segment size too small"
        );
        SegmentWriter {
            segment_bytes,
            next_id: 0,
            records: Vec::new(),
            usage: SegmentUsage::new(),
        }
    }

    /// Segments written so far.
    pub fn records(&self) -> &[SegmentRecord] {
        &self.records
    }

    /// The usage table (for the cleaner).
    pub fn usage(&self) -> &SegmentUsage {
        &self.usage
    }

    /// Mutable usage table (deletes kill blocks).
    pub fn usage_mut(&mut self) -> &mut SegmentUsage {
        &mut self.usage
    }

    /// Writes **all** of `chunks` to the log. Naturally full segments get
    /// [`SegmentCause::Full`] (unless `uniform_cause` is set); the final,
    /// usually partial, segment gets `cause`. Returns the number of
    /// segments written.
    pub fn write_all(
        &mut self,
        t: SimTime,
        chunks: &Chunks,
        cause: SegmentCause,
        uniform_cause: bool,
    ) -> usize {
        let (written, remainder) = self.pack(t, chunks, Some((cause, uniform_cause)));
        debug_assert!(remainder.is_none());
        written
    }

    /// Writes only the naturally full segments that `chunks` can fill,
    /// returning the remainder (less than one segment's worth) to the
    /// caller. Returns `(segments_written, remainder)`.
    pub fn write_full_only(&mut self, t: SimTime, chunks: &Chunks) -> (usize, Chunks) {
        let (written, remainder) = self.pack(t, chunks, None);
        (written, remainder.unwrap_or_default())
    }

    /// Core packing loop. With `final_cause = Some(..)` everything is
    /// flushed; with `None` the tail remainder is returned instead.
    fn pack(
        &mut self,
        t: SimTime,
        chunks: &Chunks,
        final_cause: Option<(SegmentCause, bool)>,
    ) -> (usize, Option<Chunks>) {
        // Deduplicate to whole blocks per file.
        let mut per_file: BTreeMap<FileId, BTreeSet<u64>> = BTreeMap::new();
        for (file, ranges) in chunks {
            let set = per_file.entry(*file).or_default();
            for r in ranges.iter() {
                for b in blocks_of_range(*file, r) {
                    set.insert(b.index);
                }
            }
        }

        let mut open = OpenSegment::default();
        let mut written = 0;
        let uniform = final_cause;
        for (file, blocks) in &per_file {
            for &idx in blocks {
                let adds_file = !open.files.contains(file);
                if !open.blocks.is_empty() && open.on_disk_with(adds_file) > self.segment_bytes {
                    let cause = match uniform {
                        Some((c, true)) => c,
                        _ => SegmentCause::Full,
                    };
                    self.emit(t, std::mem::take(&mut open), cause);
                    written += 1;
                }
                open.blocks.push(BlockId::new(*file, idx));
                open.files.insert(*file);
            }
        }

        if open.blocks.is_empty() {
            return (written, None);
        }
        match final_cause {
            Some((cause, _)) => {
                // A final chunk that leaves no room for another block is
                // Full. `on_disk_with` already budgets one incoming block.
                let cause = if open.on_disk_with(false) > self.segment_bytes {
                    SegmentCause::Full
                } else {
                    cause
                };
                self.emit(t, open, cause);
                (written + 1, None)
            }
            None => {
                // Hand the tail back as chunks.
                let mut rem: BTreeMap<FileId, RangeSet> = BTreeMap::new();
                for b in open.blocks {
                    rem.entry(b.file).or_default().insert(b.byte_range());
                }
                (written, Some(rem.into_iter().collect()))
            }
        }
    }

    fn emit(&mut self, t: SimTime, seg: OpenSegment, cause: SegmentCause) {
        let id = self.next_id;
        self.next_id += 1;
        for b in &seg.blocks {
            self.usage.place(*b, id);
        }
        let checksum = segment_checksum(&seg.blocks);
        let record = SegmentRecord {
            id,
            time: t,
            cause,
            data_bytes: seg.data_bytes(),
            file_count: seg.files.len(),
            stored_checksum: checksum,
            content_checksum: checksum,
        };
        nvfs_obs::counter_add("lfs.segments_written", 1);
        nvfs_obs::counter_add("lfs.data_bytes", record.data_bytes);
        if record.is_partial() {
            nvfs_obs::counter_add("lfs.segments_partial", 1);
        }
        nvfs_obs::histogram_record(
            "lfs.segment_fill_pct",
            record.on_disk_bytes() * 100 / self.segment_bytes.max(1),
        );
        nvfs_obs::event("seg_write", t.as_micros())
            .str("cause", cause.label())
            .u64("seg", id)
            .u64("data_bytes", record.data_bytes)
            .u64("files", record.file_count as u64)
            .u64("partial", record.is_partial() as u64)
            .emit();
        self.records.push(record);
    }

    /// Like [`write_all`](SegmentWriter::write_all), but the **final**
    /// segment write is torn after `fraction` of its blocks: its summary
    /// checksum no longer matches the on-disk content, its blocks are not
    /// placed in the usage table, and the segment's intended chunks are
    /// returned so the caller can rewrite them after
    /// [`roll_forward`](SegmentWriter::roll_forward) truncates the tear.
    ///
    /// Naturally full prefix segments are written (and checksummed) intact.
    /// A fraction of 1.0 or more tears nothing: the write completes
    /// normally and an empty chunk list is returned.
    pub fn write_all_torn(
        &mut self,
        t: SimTime,
        chunks: &Chunks,
        cause: SegmentCause,
        fraction: f64,
    ) -> Chunks {
        let (_, tail) = self.write_full_only(t, chunks);
        if tail.is_empty() {
            return Chunks::new();
        }
        // Rebuild the final segment exactly as `pack` would have.
        let mut per_file: BTreeMap<FileId, BTreeSet<u64>> = BTreeMap::new();
        for (file, ranges) in &tail {
            let set = per_file.entry(*file).or_default();
            for r in ranges.iter() {
                for b in blocks_of_range(*file, r) {
                    set.insert(b.index);
                }
            }
        }
        let mut seg = OpenSegment::default();
        for (file, blocks) in &per_file {
            for &idx in blocks {
                seg.blocks.push(BlockId::new(*file, idx));
                seg.files.insert(*file);
            }
        }
        let intended = seg.blocks.len();
        let written = (intended as f64 * fraction) as usize;
        if written >= intended {
            self.write_all(t, &tail, cause, false);
            return Chunks::new();
        }

        let id = self.next_id;
        self.next_id += 1;
        let record = SegmentRecord {
            id,
            time: t,
            cause,
            data_bytes: seg.data_bytes(),
            file_count: seg.files.len(),
            stored_checksum: segment_checksum(&seg.blocks),
            content_checksum: segment_checksum(&seg.blocks[..written]),
        };
        debug_assert!(!record.is_valid(), "a torn segment must fail its checksum");
        nvfs_obs::counter_add("lfs.segments_torn", 1);
        nvfs_obs::event("seg_write", t.as_micros())
            .str("cause", cause.label())
            .u64("seg", id)
            .u64("data_bytes", record.data_bytes)
            .u64("files", record.file_count as u64)
            .u64("partial", record.is_partial() as u64)
            .u64("torn", 1)
            .emit();
        self.records.push(record);
        tail
    }

    /// Roll-forward recovery over the log tail: scans back from the end,
    /// truncating every segment whose on-disk content fails its summary
    /// checksum, and stops at the first valid segment. Torn tails become
    /// *detected* truncations instead of silently replayed garbage.
    ///
    /// Idempotent: a second call finds a valid tail and truncates nothing,
    /// which is what makes replay-after-recovery safe to repeat.
    pub fn roll_forward(&mut self, t: SimTime) -> RollForward {
        let mut out = RollForward::default();
        while let Some(last) = self.records.last() {
            out.scanned += 1;
            if last.is_valid() {
                break;
            }
            let torn = self.records.pop().expect("just peeked");
            // Torn segments never placed blocks, but evacuate defensively
            // so the usage table cannot reference a truncated segment.
            self.usage.evacuate(torn.id);
            out.truncated_segments += 1;
            out.truncated_data_bytes += torn.data_bytes;
        }
        if out.truncated_segments > 0 {
            nvfs_obs::counter_add("lfs.segments_truncated", out.truncated_segments as u64);
            nvfs_obs::counter_add("lfs.bytes_truncated", out.truncated_data_bytes);
            nvfs_obs::event("roll_forward", t.as_micros())
                .u64("scanned", out.scanned as u64)
                .u64("truncated_segments", out.truncated_segments as u64)
                .u64("truncated_bytes", out.truncated_data_bytes)
                .emit();
        }
        out
    }
}

/// What one [`SegmentWriter::roll_forward`] pass found and truncated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RollForward {
    /// Trailing segments examined (truncated ones plus the first valid).
    pub scanned: usize,
    /// Checksum-invalid segments removed from the log tail.
    pub truncated_segments: usize,
    /// Intended data bytes of the truncated segments — exactly the bytes
    /// that must be written again from NVRAM.
    pub truncated_data_bytes: u64,
}

/// The summary-block checksum: 64-bit FNV-1a over the segment's (file,
/// block-index) content list, in segment order. The simulation carries no
/// payload bytes, so the block list *is* the content identity; any torn
/// prefix of it hashes differently, which is all a checksum must provide.
/// The hasher is the shared [`nvfs_types::framing`] implementation, so the
/// segment summaries and the WAL records use one checksum definition.
fn segment_checksum(blocks: &[BlockId]) -> u64 {
    let mut d = nvfs_types::framing::Fnv64::new();
    for b in blocks {
        d.update(&format!("{}:{};", b.file.0, b.index));
    }
    d.value()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::SEGMENT_BYTES;
    use nvfs_types::ByteRange;

    fn chunk(file: u32, bytes: u64) -> (FileId, RangeSet) {
        (FileId(file), RangeSet::from_range(ByteRange::new(0, bytes)))
    }

    #[test]
    fn summary_checksum_matches_the_obs_digest() {
        // The shared nvfs-types hasher must stay bit-identical to the obs
        // digest the summaries were originally computed with, or every
        // golden checksum in the repo silently changes.
        let blocks = vec![
            BlockId::new(FileId(3), 0),
            BlockId::new(FileId(3), 1),
            BlockId::new(FileId(7), 2),
        ];
        let mut d = nvfs_obs::digest::Digest::new();
        for b in &blocks {
            d.update(&format!("{}:{};", b.file.0, b.index));
        }
        assert_eq!(segment_checksum(&blocks), d.value());
    }

    #[test]
    fn small_flush_is_one_partial_segment() {
        let mut w = SegmentWriter::new(SEGMENT_BYTES);
        let n = w.write_all(
            SimTime::ZERO,
            &vec![chunk(0, 8192)],
            SegmentCause::Fsync,
            false,
        );
        assert_eq!(n, 1);
        let r = w.records()[0];
        assert_eq!(r.cause, SegmentCause::Fsync);
        assert_eq!(r.data_bytes, 8192);
        assert!(r.is_partial());
    }

    #[test]
    fn large_flush_splits_into_full_segments() {
        let mut w = SegmentWriter::new(SEGMENT_BYTES);
        // ~1.2 MB -> 2 full + 1 partial.
        let n = w.write_all(
            SimTime::ZERO,
            &vec![chunk(0, 1_258_291)],
            SegmentCause::Timeout,
            false,
        );
        assert_eq!(n, 3);
        let causes: Vec<SegmentCause> = w.records().iter().map(|r| r.cause).collect();
        assert_eq!(
            causes,
            vec![
                SegmentCause::Full,
                SegmentCause::Full,
                SegmentCause::Timeout
            ]
        );
        for r in &w.records()[..2] {
            assert!(!r.is_partial(), "intermediate segments are full");
        }
    }

    #[test]
    fn write_full_only_returns_remainder() {
        let mut w = SegmentWriter::new(SEGMENT_BYTES);
        let (n, rem) = w.write_full_only(SimTime::ZERO, &vec![chunk(0, 700 * 1024)]);
        assert_eq!(n, 1);
        let rem_bytes: u64 = rem.iter().map(|(_, r)| r.len_bytes()).sum();
        // Every block is either on disk or in the remainder.
        let seg_data = w.records()[0].data_bytes;
        assert!(!w.records()[0].is_partial());
        assert_eq!(rem_bytes + seg_data, 700 * 1024);
    }

    #[test]
    fn partial_blocks_round_to_whole_blocks() {
        let mut w = SegmentWriter::new(SEGMENT_BYTES);
        w.write_all(
            SimTime::ZERO,
            &vec![chunk(0, 100)],
            SegmentCause::Fsync,
            false,
        );
        assert_eq!(w.records()[0].data_bytes, 4096);
    }

    #[test]
    fn metadata_counts_distinct_files() {
        let mut w = SegmentWriter::new(SEGMENT_BYTES);
        w.write_all(
            SimTime::ZERO,
            &vec![chunk(0, 4096), chunk(1, 4096), chunk(2, 4096)],
            SegmentCause::Timeout,
            false,
        );
        let r = w.records()[0];
        assert_eq!(r.file_count, 3);
        assert_eq!(r.metadata_bytes(), 3 * METADATA_BLOCK_BYTES);
    }

    #[test]
    fn usage_tracks_overwrites_and_deletes() {
        let mut w = SegmentWriter::new(SEGMENT_BYTES);
        w.write_all(
            SimTime::ZERO,
            &vec![chunk(0, 16384)],
            SegmentCause::Timeout,
            false,
        );
        let first = w.records()[0].id;
        assert_eq!(w.usage().live_bytes(first), 16384);
        // Rewrite the same blocks: the old segment's data dies.
        w.write_all(
            SimTime::from_secs(1),
            &vec![chunk(0, 16384)],
            SegmentCause::Timeout,
            false,
        );
        assert_eq!(w.usage().live_bytes(first), 0);
        let second = w.records()[1].id;
        assert_eq!(w.usage().live_bytes(second), 16384);
        w.usage_mut().kill_file(FileId(0));
        assert_eq!(w.usage().total_live_bytes(), 0);
    }

    #[test]
    fn least_utilized_orders_by_live_data() {
        let mut w = SegmentWriter::new(SEGMENT_BYTES);
        w.write_all(
            SimTime::ZERO,
            &vec![chunk(0, 16384)],
            SegmentCause::Timeout,
            false,
        );
        w.write_all(
            SimTime::ZERO,
            &vec![chunk(1, 4096)],
            SegmentCause::Timeout,
            false,
        );
        let victims = w.usage().least_utilized(1);
        assert_eq!(victims, vec![w.records()[1].id]);
        let blocks = w.usage_mut().evacuate(victims[0]);
        assert_eq!(blocks.len(), 1);
    }

    #[test]
    fn uniform_cause_marks_cleaner_segments() {
        let mut w = SegmentWriter::new(SEGMENT_BYTES);
        w.write_all(
            SimTime::ZERO,
            &vec![chunk(0, 1 << 20)],
            SegmentCause::Cleaner,
            true,
        );
        assert!(w.records().iter().all(|r| r.cause == SegmentCause::Cleaner));
    }

    #[test]
    fn normal_segments_pass_their_checksum() {
        let mut w = SegmentWriter::new(SEGMENT_BYTES);
        w.write_all(
            SimTime::ZERO,
            &vec![chunk(0, 1 << 20)],
            SegmentCause::Timeout,
            false,
        );
        assert!(w.records().iter().all(|r| r.is_valid()));
        assert_ne!(w.records()[0].stored_checksum, 0);
    }

    #[test]
    fn torn_write_fails_checksum_and_places_no_blocks() {
        let mut w = SegmentWriter::new(SEGMENT_BYTES);
        let tail = w.write_all_torn(
            SimTime::ZERO,
            &vec![chunk(0, 16384)],
            SegmentCause::Recovery,
            0.5,
        );
        assert_eq!(tail, vec![chunk(0, 16384)]);
        let r = w.records()[0];
        assert!(!r.is_valid());
        assert_eq!(r.data_bytes, 16384);
        // Torn segments never enter the usage table.
        assert_eq!(w.usage().total_live_bytes(), 0);
    }

    #[test]
    fn torn_write_keeps_full_prefix_segments_intact() {
        let mut w = SegmentWriter::new(SEGMENT_BYTES);
        // ~1.2 MB -> 2 full (valid) + 1 torn partial.
        let tail = w.write_all_torn(
            SimTime::ZERO,
            &vec![chunk(0, 1_200_000)],
            SegmentCause::Recovery,
            0.3,
        );
        assert!(!tail.is_empty());
        let records = w.records();
        assert_eq!(records.len(), 3);
        assert!(records[0].is_valid());
        assert!(records[1].is_valid());
        assert!(!records[2].is_valid());
        let tail_bytes: u64 = tail.iter().map(|(_, s)| s.len_bytes()).sum();
        assert_eq!(records[2].data_bytes, tail_bytes);
    }

    #[test]
    fn fraction_one_is_not_torn() {
        let mut w = SegmentWriter::new(SEGMENT_BYTES);
        let tail = w.write_all_torn(
            SimTime::ZERO,
            &vec![chunk(0, 8192)],
            SegmentCause::Recovery,
            1.0,
        );
        assert!(tail.is_empty());
        assert!(w.records()[0].is_valid());
        assert_eq!(w.usage().total_live_bytes(), 8192);
    }

    #[test]
    fn roll_forward_truncates_only_the_torn_tail() {
        let mut w = SegmentWriter::new(SEGMENT_BYTES);
        w.write_all(
            SimTime::ZERO,
            &vec![chunk(0, 8192)],
            SegmentCause::Fsync,
            false,
        );
        w.write_all_torn(
            SimTime::from_secs(1),
            &vec![chunk(1, 12288)],
            SegmentCause::Recovery,
            0.5,
        );
        let rolled = w.roll_forward(SimTime::from_secs(2));
        assert_eq!(rolled.truncated_segments, 1);
        assert_eq!(rolled.truncated_data_bytes, 12288);
        assert_eq!(rolled.scanned, 2);
        assert_eq!(w.records().len(), 1);
        assert!(w.records()[0].is_valid());
        // Idempotent: a second pass finds a valid tail and does nothing.
        let again = w.roll_forward(SimTime::from_secs(3));
        assert_eq!(again.truncated_segments, 0);
        assert_eq!(again.truncated_data_bytes, 0);
        assert_eq!(w.records().len(), 1);
    }
}
