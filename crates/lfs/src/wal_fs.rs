//! The write-ahead-log server mode: LFS in front of an NVRAM log.
//!
//! Where [`fs`](crate::fs) models the paper's §4 *paging* answer (a
//! non-volatile segment write buffer staging whole 4 KB blocks), this
//! module models the *logging* answer the follow-on literature converged
//! on (NVLog, arXiv 2408.02911; logging-vs-paging, arXiv 2305.02244):
//!
//! * `fsync` encodes the file's dirty byte ranges into one checksummed,
//!   sequence-numbered record, appends it to the [`NvLog`], and
//!   acknowledges as soon as the NVRAM copy completes — exact bytes plus a
//!   20-byte frame, not block-rounded pages, and no disk write.
//! * Segments are written back lazily: the 5-second sweep drains log
//!   records older than [`WalConfig::drain_age`] as
//!   [`SegmentCause::WalDrain`] segments, inside a `wal_drain` timing span.
//! * The log truncates through a record's sequence number only after the
//!   segment write carrying its bytes completes — the invariant that makes
//!   the ack at append time safe.
//! * After a crash the log rolls forward: the valid record prefix is
//!   replayed as [`SegmentCause::Recovery`] segments and the torn tail
//!   (necessarily un-acked) is truncated.

use nvfs_faults::{ReliabilityStats, WalCrashFault, WalCrashPoint};
use nvfs_types::{FileId, RangeSet, SimDuration, SimTime};
use nvfs_wal::NvLog;

use nvfs_trace::synth::lfs_workload::{FsWorkload, LfsOpKind};

use crate::dirty::DirtyCache;
use crate::fs::FsReport;
use crate::layout::{SegmentCause, SEGMENT_BYTES};
use crate::log::{Chunks, SegmentWriter};

/// Configuration for one WAL-mode file-system simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalConfig {
    /// Segment size in bytes (512 KB in Sprite).
    pub segment_bytes: u64,
    /// Sweep period of the background drain (5 s, the Sprite sweep).
    pub sweep_period: SimDuration,
    /// Age at which un-fsynced volatile dirty data is flushed (30 s).
    pub writeback_age: SimDuration,
    /// Age at which an appended log record is drained to disk.
    pub drain_age: SimDuration,
    /// NVRAM log capacity in bytes (½ MB, matching the paper's write
    /// buffer so the logging-vs-paging comparison is like for like).
    pub log_capacity: u64,
}

impl WalConfig {
    /// Sprite defaults: ½ MB of log NVRAM, drained on the next sweep.
    pub fn sprite() -> Self {
        WalConfig {
            segment_bytes: SEGMENT_BYTES,
            sweep_period: SimDuration::from_secs(5),
            writeback_age: SimDuration::from_secs(30),
            drain_age: SimDuration::from_secs(5),
            log_capacity: 512 << 10,
        }
    }
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig::sprite()
    }
}

/// What one acknowledged fsync cost: the bytes its record appended, plus
/// any synchronous overflow drain it had to wait out. The experiment layer
/// turns this into latency with a disk model — `append_latency_ns(payload)`
/// for the NVRAM copy, positioning + transfer for the forced segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsyncSample {
    /// Payload data bytes the fsync's record carried.
    pub payload_bytes: u64,
    /// Segments a log-overflow drain forced this fsync to wait for.
    pub forced_segments: u64,
    /// On-disk bytes of those forced segments.
    pub forced_on_disk_bytes: u64,
}

/// WAL-specific accounting for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalStats {
    /// Records appended (and acknowledged).
    pub appends: u64,
    /// Payload data bytes across those records.
    pub append_bytes: u64,
    /// Background drain passes that wrote at least one segment.
    pub drains: u64,
    /// Data bytes drained lazily by the background sweep.
    pub drained_bytes: u64,
    /// Synchronous drains forced by log overflow.
    pub overflow_drains: u64,
    /// Records released by truncation.
    pub truncated_records: u64,
    /// Log bytes discarded by crash roll-forward (torn, never acked).
    pub torn_log_bytes: u64,
    /// Data bytes replayed from the log after crashes.
    pub replayed_bytes: u64,
}

/// One crash incident as the durability oracle needs to see it.
#[derive(Debug, Clone, PartialEq)]
pub struct WalCrashIncident {
    /// When the server died.
    pub at: SimTime,
    /// Where in the commit protocol the crash landed.
    pub point: WalCrashPoint,
    /// Byte ranges recovery replayed from the log.
    pub replayed: Chunks,
    /// Live on-disk byte ranges at the moment of the crash.
    pub disk: Chunks,
    /// Log bytes truncated as torn (never acknowledged).
    pub truncated_log_bytes: u64,
}

/// The chronological event record a WAL run leaves behind: everything the
/// oracle needs to reconstruct the durability promise and judge each
/// crash, in exact occurrence order (no same-timestamp ambiguity).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WalTrace {
    /// Events in occurrence order.
    pub events: Vec<WalTraceEvent>,
    /// Live on-disk byte ranges at shutdown.
    pub final_disk: Chunks,
}

/// One entry of a [`WalTrace`].
#[derive(Debug, Clone, PartialEq)]
pub enum WalTraceEvent {
    /// A record was durably appended and acknowledged: its ranges are
    /// promised from this moment.
    Append {
        /// Ack time.
        t: SimTime,
        /// The file the record covers.
        file: FileId,
        /// The promised byte ranges.
        ranges: RangeSet,
    },
    /// The file was deleted: its promise is withdrawn.
    Delete {
        /// Delete time.
        t: SimTime,
        /// The deleted file.
        file: FileId,
    },
    /// The server crashed and recovered.
    Crash(WalCrashIncident),
}

/// Results of one WAL-mode simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct WalFsReport {
    /// The segment-level report (records, cleaner stats, disk time).
    pub fs: FsReport,
    /// WAL-specific accounting.
    pub wal: WalStats,
    /// One sample per acknowledged fsync.
    pub fsync_samples: Vec<FsyncSample>,
    /// The chronological event record for the durability oracle.
    pub trace: WalTrace,
}

/// Simulates `workload` in WAL mode with no crashes.
///
/// # Examples
///
/// ```
/// use nvfs_lfs::wal_fs::{run_filesystem_wal, WalConfig};
/// use nvfs_trace::synth::lfs_workload::{sprite_server_workloads, ServerWorkloadConfig};
///
/// let ws = sprite_server_workloads(&ServerWorkloadConfig::tiny());
/// let report = run_filesystem_wal(&ws[0], &WalConfig::sprite());
/// assert_eq!(report.wal.appends as usize, report.fsync_samples.len());
/// assert!(report.fs.data_bytes() > 0);
/// ```
pub fn run_filesystem_wal(workload: &FsWorkload, config: &WalConfig) -> WalFsReport {
    run_filesystem_wal_faulted(workload, config, &[]).0
}

/// Like [`run_filesystem_wal`], but with injected WAL-mode server crashes.
/// At each crash the volatile dirty cache is lost; the log survives, rolls
/// forward (truncating any torn tail record, which is never acknowledged
/// and therefore never promised), and replays its valid prefix as
/// [`SegmentCause::Recovery`] segments. Crashes must be sorted by time, as
/// [`FaultSchedule`](nvfs_faults::FaultSchedule) compiles them.
pub fn run_filesystem_wal_faulted(
    workload: &FsWorkload,
    config: &WalConfig,
    crashes: &[WalCrashFault],
) -> (WalFsReport, ReliabilityStats) {
    let mut reliability = ReliabilityStats::default();
    let mut stats = WalStats::default();
    let mut next_fault = 0usize;
    let mut writer = SegmentWriter::new(config.segment_bytes);
    let mut dirty = DirtyCache::new();
    let mut log = NvLog::new(config.log_capacity);
    let mut fsync_ops = 0u64;
    let mut app_write_bytes = 0u64;
    let mut fsync_samples = Vec::new();
    let mut events = Vec::new();
    let mut next_sweep = SimTime::ZERO + config.sweep_period;
    let mut end_time = SimTime::ZERO;

    // A crash fires: the volatile dirty cache dies, the log survives.
    // Point-specific behaviour exercises each boundary of the commit
    // protocol's append -> writeback -> truncate cycle.
    macro_rules! wal_crash {
        ($fault:expr) => {{
            let fault: &WalCrashFault = $fault;
            reliability.server_crashes += 1;
            let mut doomed = dirty.take_all();
            match fault.point {
                WalCrashPoint::MidAppend | WalCrashPoint::TornRecord => {
                    // An in-flight append is torn: mostly-header for
                    // MidAppend, mostly-payload for TornRecord. Either way
                    // the fsync never acked, so the bytes are simply lost
                    // with the rest of the dirty cache.
                    if let Some((f, r)) = doomed.first() {
                        let fraction = match fault.point {
                            WalCrashPoint::MidAppend => 0.2,
                            _ => 0.8,
                        };
                        log.append_torn(*f, r, fraction);
                    }
                }
                WalCrashPoint::PostAppend => {
                    // The append completed and acked just before the crash:
                    // those bytes are promised and must be replayed.
                    if !doomed.is_empty() {
                        let (f, r) = doomed.remove(0);
                        log.append(fault.time, f, &r);
                        stats.appends += 1;
                        stats.append_bytes += r.len_bytes();
                        events.push(WalTraceEvent::Append {
                            t: fault.time,
                            file: f,
                            ranges: r,
                        });
                    }
                }
                WalCrashPoint::MidTruncation => {
                    // A drain's segment writes completed but the crash
                    // lands before truncation: the records survive in the
                    // log and will be replayed a second time. Replay is
                    // idempotent (the blocks are simply rewritten), which
                    // is exactly what this point proves.
                    let chunks: Chunks = log
                        .entries()
                        .iter()
                        .map(|e| (e.file, e.ranges.clone()))
                        .collect();
                    write_out(&mut writer, fault.time, &chunks, SegmentCause::WalDrain);
                }
            }
            reliability.bytes_lost_buffer += doomed.iter().map(|(_, r)| r.len_bytes()).sum::<u64>();

            // Restart: roll the log forward and replay the valid prefix.
            let disk = writer.usage().live_ranges();
            let recovery = log.recover(fault.time);
            stats.torn_log_bytes += recovery.truncated_bytes;
            let replayed: Chunks = log
                .entries()
                .iter()
                .map(|e| (e.file, e.ranges.clone()))
                .collect();
            if !replayed.is_empty() {
                write_out(&mut writer, fault.time, &replayed, SegmentCause::Recovery);
                reliability.bytes_replayed += recovery.replayed_bytes;
                stats.replayed_bytes += recovery.replayed_bytes;
            }
            if let Some(last) = log.entries().last() {
                let seq = last.seq;
                stats.truncated_records += log.entries().len() as u64;
                log.truncate_through(fault.time, seq);
            }
            events.push(WalTraceEvent::Crash(WalCrashIncident {
                at: fault.time,
                point: fault.point,
                replayed,
                disk,
                truncated_log_bytes: recovery.truncated_bytes,
            }));
        }};
    }

    for op in &workload.ops {
        while next_fault < crashes.len() && crashes[next_fault].time <= op.time {
            wal_crash!(&crashes[next_fault]);
            next_fault += 1;
        }
        end_time = end_time.max(op.time);
        while next_sweep <= op.time {
            // Aged volatile dirty data flushes exactly as in direct mode.
            if next_sweep >= SimTime::ZERO + config.writeback_age {
                let cutoff = next_sweep - config.writeback_age;
                let aged = dirty.take_older_than(cutoff);
                if !aged.is_empty() {
                    write_out(&mut writer, next_sweep, &aged, SegmentCause::Timeout);
                }
            }
            // Background drain: log records old enough leave for disk, and
            // only then does the log let them go.
            drain_log(
                &mut writer,
                &mut log,
                &mut stats,
                next_sweep,
                config.drain_age,
            );
            next_sweep += config.sweep_period;
        }

        match op.kind {
            LfsOpKind::Write { file, range } => {
                app_write_bytes += range.len();
                dirty.add(file, range, op.time);
                if dirty.total_bytes() >= config.segment_bytes {
                    let chunks = dirty.take_all();
                    let (_, remainder) = writer.write_full_only(op.time, &chunks);
                    for (f, r) in remainder {
                        for piece in r.iter() {
                            dirty.add(f, piece, op.time);
                        }
                    }
                }
            }
            LfsOpKind::Fsync { file } => {
                fsync_ops += 1;
                if let Some(r) = dirty.take_file(file) {
                    // Overflow forces a synchronous drain first — the WAL
                    // analogue of the write buffer's NvramFull flush — and
                    // this fsync pays the disk time.
                    let mut sample = FsyncSample {
                        payload_bytes: r.len_bytes(),
                        forced_segments: 0,
                        forced_on_disk_bytes: 0,
                    };
                    if log.would_overflow(&r) {
                        let before = writer.records().len();
                        let chunks: Chunks = log
                            .entries()
                            .iter()
                            .map(|e| (e.file, e.ranges.clone()))
                            .collect();
                        write_out(&mut writer, op.time, &chunks, SegmentCause::NvramFull);
                        if let Some(last) = log.entries().last() {
                            let seq = last.seq;
                            stats.truncated_records += log.entries().len() as u64;
                            log.truncate_through(op.time, seq);
                        }
                        stats.overflow_drains += 1;
                        let forced = &writer.records()[before..];
                        sample.forced_segments = forced.len() as u64;
                        sample.forced_on_disk_bytes =
                            forced.iter().map(|rec| rec.on_disk_bytes()).sum();
                    }
                    log.append(op.time, file, &r);
                    stats.appends += 1;
                    stats.append_bytes += r.len_bytes();
                    events.push(WalTraceEvent::Append {
                        t: op.time,
                        file,
                        ranges: r,
                    });
                    fsync_samples.push(sample);
                }
            }
            LfsOpKind::Delete { file } => {
                dirty.discard_file(file);
                log.kill_file(file);
                writer.usage_mut().kill_file(file);
                events.push(WalTraceEvent::Delete { t: op.time, file });
            }
        }
    }

    while next_fault < crashes.len() {
        end_time = end_time.max(crashes[next_fault].time);
        wal_crash!(&crashes[next_fault]);
        next_fault += 1;
    }

    // Shutdown: drain the log, then flush the volatile remainder.
    drain_log(
        &mut writer,
        &mut log,
        &mut stats,
        end_time,
        SimDuration::ZERO,
    );
    let rest = dirty.take_all();
    write_out(&mut writer, end_time, &rest, SegmentCause::Shutdown);

    let final_disk = writer.usage().live_ranges();
    (
        WalFsReport {
            fs: FsReport {
                name: workload.name.to_string(),
                records: writer.records().to_vec(),
                fsync_ops,
                fsyncs_absorbed: stats.appends,
                fsync_absorbed_page_bytes: 0,
                app_write_bytes,
                cleaner: Default::default(),
            },
            wal: stats,
            fsync_samples,
            trace: WalTrace { events, final_disk },
        },
        reliability,
    )
}

fn write_out(writer: &mut SegmentWriter, t: SimTime, chunks: &Chunks, cause: SegmentCause) {
    if chunks.iter().all(|(_, r)| r.is_empty()) {
        return;
    }
    writer.write_all(t, chunks, cause, false);
}

/// Drains every log record appended at or before `t - age` as
/// [`SegmentCause::WalDrain`] segments, then truncates the log through the
/// last drained sequence number — writeback completion first, truncation
/// second, never the other way around.
fn drain_log(
    writer: &mut SegmentWriter,
    log: &mut NvLog,
    stats: &mut WalStats,
    t: SimTime,
    age: SimDuration,
) {
    let cutoff = if t >= SimTime::ZERO + age {
        t - age
    } else {
        return;
    };
    let due: Vec<_> = log
        .entries()
        .iter()
        .take_while(|e| e.time <= cutoff)
        .map(|e| (e.seq, e.file, e.ranges.clone()))
        .collect();
    let Some(&(last_seq, _, _)) = due.last() else {
        return;
    };
    nvfs_obs::timing::span("wal_drain", || {
        let chunks: Chunks = due.iter().map(|(_, f, r)| (*f, r.clone())).collect();
        let drained: u64 = chunks.iter().map(|(_, r)| r.len_bytes()).sum();
        write_out(writer, t, &chunks, SegmentCause::WalDrain);
        stats.truncated_records += due.len() as u64;
        log.truncate_through(t, last_seq);
        if drained > 0 {
            stats.drains += 1;
            stats.drained_bytes += drained;
        }
    });
}

/// Runs all eight Sprite file systems in WAL mode (deterministic at any
/// job count: fan out, rejoin in workload order).
pub fn run_server_wal(workloads: &[FsWorkload], config: &WalConfig) -> Vec<WalFsReport> {
    nvfs_par::par_map(workloads.iter().collect(), nvfs_par::jobs(), |w| {
        run_filesystem_wal(w, config)
    })
}

/// Runs all eight Sprite file systems in WAL mode with the same injected
/// crash schedule, merging the per-FS reliability accounting in workload
/// order.
pub fn run_server_wal_faulted(
    workloads: &[FsWorkload],
    config: &WalConfig,
    crashes: &[WalCrashFault],
) -> (Vec<WalFsReport>, ReliabilityStats) {
    let results = nvfs_par::par_map(workloads.iter().collect(), nvfs_par::jobs(), |w| {
        run_filesystem_wal_faulted(w, config, crashes)
    });
    let mut merged = ReliabilityStats::default();
    let mut reports = Vec::with_capacity(results.len());
    for (report, reliability) in results {
        merged.merge(&reliability);
        reports.push(report);
    }
    (reports, merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvfs_trace::synth::lfs_workload::{sprite_server_workloads, LfsOp, ServerWorkloadConfig};
    use nvfs_types::ByteRange;

    fn write_then_fsync() -> FsWorkload {
        FsWorkload {
            name: "/test",
            ops: vec![
                LfsOp {
                    time: SimTime::from_secs(1),
                    kind: LfsOpKind::Write {
                        file: FileId(0),
                        range: ByteRange::new(0, 8192),
                    },
                },
                LfsOp {
                    time: SimTime::from_secs(2),
                    kind: LfsOpKind::Fsync { file: FileId(0) },
                },
                // A late op keeps the clock running past the drain age.
                LfsOp {
                    time: SimTime::from_secs(60),
                    kind: LfsOpKind::Fsync { file: FileId(0) },
                },
            ],
        }
    }

    #[test]
    fn fsync_acks_into_the_log_and_drains_lazily() {
        let r = run_filesystem_wal(&write_then_fsync(), &WalConfig::sprite());
        // The fsync appended instead of forcing a disk write...
        assert_eq!(r.fs.count(SegmentCause::Fsync), 0);
        assert_eq!(r.wal.appends, 1);
        assert_eq!(r.fsync_samples.len(), 1);
        assert_eq!(r.fsync_samples[0].payload_bytes, 8192);
        assert_eq!(r.fsync_samples[0].forced_segments, 0);
        // ...and a later sweep drained the record as a WalDrain segment.
        assert_eq!(r.fs.count(SegmentCause::WalDrain), 1);
        assert_eq!(r.wal.drained_bytes, 8192);
        assert_eq!(r.wal.truncated_records, 1);
        assert_eq!(r.fs.data_bytes(), 8192);
    }

    #[test]
    fn truncation_only_follows_writeback() {
        // Within one run, every truncated record's bytes are on disk:
        // total drained + replayed bytes never lag truncations.
        let ws = sprite_server_workloads(&ServerWorkloadConfig::tiny());
        let r = run_filesystem_wal(&ws[0], &WalConfig::sprite());
        assert!(r.wal.truncated_records >= r.wal.drains);
        // Every promised byte reached the disk by shutdown.
        let on_disk: u64 = r.fs.data_bytes();
        assert!(on_disk > 0);
        assert_eq!(r.wal.torn_log_bytes, 0, "no crash, no torn records");
    }

    #[test]
    fn overflow_forces_a_synchronous_drain() {
        // A log two records wide: the third fsync overflows it.
        let mut ops = Vec::new();
        for i in 0..3u64 {
            ops.push(LfsOp {
                time: SimTime::from_millis(i * 10),
                kind: LfsOpKind::Write {
                    file: FileId(i as u32),
                    range: ByteRange::new(0, 100 << 10),
                },
            });
            ops.push(LfsOp {
                time: SimTime::from_millis(i * 10 + 5),
                kind: LfsOpKind::Fsync {
                    file: FileId(i as u32),
                },
            });
        }
        let w = FsWorkload { name: "/test", ops };
        let cfg = WalConfig {
            log_capacity: 210 << 10,
            ..WalConfig::sprite()
        };
        let r = run_filesystem_wal(&w, &cfg);
        assert_eq!(r.wal.overflow_drains, 1);
        let forced: Vec<_> = r
            .fsync_samples
            .iter()
            .filter(|s| s.forced_segments > 0)
            .collect();
        assert_eq!(forced.len(), 1);
        assert!(forced[0].forced_on_disk_bytes > 0);
        assert!(r.fs.count(SegmentCause::NvramFull) >= 1);
    }

    #[test]
    fn deletes_withdraw_the_promise_from_the_log() {
        let w = FsWorkload {
            name: "/test",
            ops: vec![
                LfsOp {
                    time: SimTime::from_secs(1),
                    kind: LfsOpKind::Write {
                        file: FileId(0),
                        range: ByteRange::new(0, 8192),
                    },
                },
                LfsOp {
                    time: SimTime::from_secs(1),
                    kind: LfsOpKind::Fsync { file: FileId(0) },
                },
                LfsOp {
                    time: SimTime::from_secs(2),
                    kind: LfsOpKind::Delete { file: FileId(0) },
                },
            ],
        };
        let r = run_filesystem_wal(&w, &WalConfig::sprite());
        // The deleted file's bytes never reach the disk live.
        assert!(r.trace.final_disk.is_empty());
        assert_eq!(r.fs.data_bytes(), 0);
    }

    fn crash(secs: u64, point: WalCrashPoint) -> WalCrashFault {
        WalCrashFault {
            time: SimTime::from_secs(secs),
            point,
        }
    }

    #[test]
    fn post_append_crash_replays_the_promised_record() {
        let w = write_then_fsync();
        // Crash at t=1.5s: the write is dirty, un-fsynced. PostAppend
        // promotes it to an acked append, so recovery must replay it.
        let (r, rel) = run_filesystem_wal_faulted(
            &w,
            &WalConfig::sprite(),
            &[crash(1, WalCrashPoint::PostAppend)],
        );
        // The crash fires when the t=1s write arrives... dirty is empty at
        // that point, so nothing was appendable; the later ops proceed.
        assert_eq!(rel.server_crashes, 1);
        // Crash again after the write exists:
        let (r2, rel2) = run_filesystem_wal_faulted(
            &w,
            &WalConfig::sprite(),
            &[crash(2, WalCrashPoint::PostAppend)],
        );
        assert_eq!(rel2.server_crashes, 1);
        assert_eq!(rel2.bytes_lost_buffer, 0, "the one dirty file was acked");
        assert_eq!(rel2.bytes_replayed, 8192);
        assert!(r2.fs.count(SegmentCause::Recovery) >= 1);
        let _ = (r, rel);
    }

    #[test]
    fn torn_record_crash_loses_only_unacked_bytes() {
        let w = write_then_fsync();
        let (r, rel) = run_filesystem_wal_faulted(
            &w,
            &WalConfig::sprite(),
            &[crash(2, WalCrashPoint::TornRecord)],
        );
        // The tear happened mid-append: the fsync never acked, so the
        // bytes count as ordinary volatile loss, and roll-forward
        // truncated the torn frame.
        assert_eq!(rel.bytes_lost_buffer, 8192);
        assert_eq!(rel.bytes_replayed, 0);
        assert!(r.wal.torn_log_bytes > 0);
        let incident = r
            .trace
            .events
            .iter()
            .find_map(|e| match e {
                WalTraceEvent::Crash(i) => Some(i),
                _ => None,
            })
            .expect("one crash");
        assert!(incident.replayed.is_empty());
        assert!(incident.truncated_log_bytes > 0);
    }

    #[test]
    fn mid_truncation_replay_is_idempotent() {
        // Fsync promises the bytes; the crash fires after the drain wrote
        // them but before truncation, so recovery replays them again.
        let w = FsWorkload {
            name: "/test",
            ops: vec![
                LfsOp {
                    time: SimTime::from_secs(1),
                    kind: LfsOpKind::Write {
                        file: FileId(0),
                        range: ByteRange::new(0, 8192),
                    },
                },
                LfsOp {
                    time: SimTime::from_secs(1),
                    kind: LfsOpKind::Fsync { file: FileId(0) },
                },
                LfsOp {
                    time: SimTime::from_secs(40),
                    kind: LfsOpKind::Fsync { file: FileId(1) },
                },
            ],
        };
        let (r, rel) = run_filesystem_wal_faulted(
            &w,
            &WalConfig::sprite(),
            &[crash(3, WalCrashPoint::MidTruncation)],
        );
        assert_eq!(rel.bytes_replayed, 8192, "the un-truncated record replays");
        assert!(r.fs.count(SegmentCause::WalDrain) >= 1);
        assert!(r.fs.count(SegmentCause::Recovery) >= 1);
        // Idempotence: the blocks are simply rewritten; exactly one copy
        // of the file's 8 KB is live at shutdown.
        let live: u64 = r
            .trace
            .final_disk
            .iter()
            .filter(|(f, _)| *f == FileId(0))
            .map(|(_, rs)| rs.len_bytes())
            .sum();
        assert_eq!(live, 8192);
        assert_eq!(rel.bytes_lost(), 0);
    }

    #[test]
    fn faulted_run_with_no_crashes_matches_plain_run() {
        let ws = sprite_server_workloads(&ServerWorkloadConfig::tiny());
        let plain = run_filesystem_wal(&ws[0], &WalConfig::sprite());
        let (faulted, rel) = run_filesystem_wal_faulted(&ws[0], &WalConfig::sprite(), &[]);
        assert_eq!(plain, faulted);
        assert_eq!(rel, ReliabilityStats::default());
    }

    #[test]
    fn wal_mode_beats_direct_mode_on_disk_accesses() {
        let ws = sprite_server_workloads(&ServerWorkloadConfig::tiny());
        let direct = crate::fs::run_filesystem(&ws[0], &crate::fs::LfsConfig::direct());
        let wal = run_filesystem_wal(&ws[0], &WalConfig::sprite());
        // The log batches fsyncs across the drain age, so /user6's storm
        // of fsync partials collapses into periodic drains.
        assert!(
            wal.fs.disk_write_accesses() < direct.disk_write_accesses() / 2,
            "wal {} vs direct {}",
            wal.fs.disk_write_accesses(),
            direct.disk_write_accesses()
        );
    }
}
