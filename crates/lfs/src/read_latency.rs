//! Read response time versus LFS write size (§3's closing analysis).
//!
//! "Extremely large write I/O's can cause potentially unacceptable latency
//! to any synchronous read requests that queue up behind them. Analytic
//! results in \[3\] show that the optimal write size for an LFS is
//! approximately two disk tracks, typically 50 - 70 kilobytes. The analytic
//! study reports that the increase in mean read response time due to full
//! segment writes is sometimes as much as 37%, but typically about 14%."
//!
//! [`ReadLatencyModel`] reproduces that analysis with an M/G/1 queue over
//! the parametric disk: reads and segment writes share the disk; larger
//! segments amortize positioning (lowering utilization) but lengthen the
//! residual service a read may queue behind. The trade-off has an interior
//! optimum that lands near two tracks for typical loads.

use nvfs_disk::DiskParams;

/// An open M/G/1 model of a disk shared by synchronous reads and LFS
/// segment writes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadLatencyModel {
    /// The disk.
    pub disk: DiskParams,
    /// Synchronous read arrivals per second.
    pub read_rate_hz: f64,
    /// Bytes per read (file-cache misses are block-sized).
    pub read_bytes: u64,
    /// Dirty bytes generated per second (the log's write load).
    pub write_byte_rate: f64,
}

impl ReadLatencyModel {
    /// A typically loaded server: 10 cache-miss reads/s of 8 KB and
    /// 100 KB/s of log writes.
    pub fn typical() -> Self {
        ReadLatencyModel {
            disk: DiskParams::sprite_era(),
            read_rate_hz: 10.0,
            read_bytes: 8 << 10,
            write_byte_rate: 100.0 * 1024.0,
        }
    }

    /// A heavily write-loaded server (the "sometimes as much as 37%" case).
    pub fn heavy() -> Self {
        ReadLatencyModel {
            write_byte_rate: 300.0 * 1024.0,
            ..ReadLatencyModel::typical()
        }
    }

    /// Service time of one read, in seconds.
    pub fn read_service_s(&self) -> f64 {
        self.disk.service_time_ms(self.read_bytes) / 1000.0
    }

    /// Service time of one segment write of `write_bytes`, in seconds.
    pub fn write_service_s(&self, write_bytes: u64) -> f64 {
        self.disk.service_time_ms(write_bytes) / 1000.0
    }

    /// Total disk utilization with segments of `write_bytes`.
    pub fn utilization(&self, write_bytes: u64) -> f64 {
        let write_rate = self.write_byte_rate / write_bytes as f64;
        self.read_rate_hz * self.read_service_s() + write_rate * self.write_service_s(write_bytes)
    }

    /// Mean read response time (queueing + service) in milliseconds for
    /// segments of `write_bytes`, or `None` if the disk would saturate.
    ///
    /// Standard M/G/1 with deterministic service per class: the mean wait is
    /// the total residual work `Σ λᵢE[Sᵢ²]/2` inflated by `1/(1-ρ)`.
    pub fn mean_read_response_ms(&self, write_bytes: u64) -> Option<f64> {
        let rho = self.utilization(write_bytes);
        if rho >= 1.0 {
            return None;
        }
        let sr = self.read_service_s();
        let sw = self.write_service_s(write_bytes);
        let write_rate = self.write_byte_rate / write_bytes as f64;
        let residual = (self.read_rate_hz * sr * sr + write_rate * sw * sw) / 2.0;
        let wait = residual / (1.0 - rho);
        Some((wait + sr) * 1000.0)
    }

    /// The write size in `grid` minimizing mean read response time.
    ///
    /// # Panics
    ///
    /// Panics if `grid` is empty or the disk saturates at every size.
    pub fn optimal_write_bytes(&self, grid: &[u64]) -> u64 {
        grid.iter()
            .filter_map(|&w| self.mean_read_response_ms(w).map(|r| (w, r)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("at least one stable write size")
            .0
    }

    /// Percentage increase of mean read response when writing full
    /// segments of `full_bytes` instead of the optimal size from `grid`.
    pub fn full_segment_penalty_pct(&self, grid: &[u64], full_bytes: u64) -> f64 {
        let best = self.optimal_write_bytes(grid);
        let at_best = self.mean_read_response_ms(best).expect("optimum is stable");
        let at_full = self
            .mean_read_response_ms(full_bytes)
            .expect("full segments must not saturate the disk");
        100.0 * (at_full - at_best) / at_best
    }
}

/// The write-size grid used by the analysis (16 KB to a full segment).
pub const WRITE_SIZE_GRID: [u64; 9] = [
    16 << 10,
    32 << 10,
    48 << 10,
    64 << 10,
    96 << 10,
    128 << 10,
    192 << 10,
    256 << 10,
    512 << 10,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_write_size_is_about_two_tracks() {
        // "[3]: the optimal write size for an LFS is approximately two disk
        // tracks, typically 50 - 70 kilobytes."
        let m = ReadLatencyModel::typical();
        let best = m.optimal_write_bytes(&WRITE_SIZE_GRID);
        let two_tracks = 2 * m.disk.track_bytes;
        assert!(
            (32 << 10..=160 << 10).contains(&best),
            "optimum {} KB (two tracks = {} KB)",
            best >> 10,
            two_tracks >> 10
        );
    }

    #[test]
    fn full_segments_cost_about_fourteen_percent_typically() {
        let m = ReadLatencyModel::typical();
        let penalty = m.full_segment_penalty_pct(&WRITE_SIZE_GRID, 512 << 10);
        assert!(
            (8.0..=30.0).contains(&penalty),
            "typical penalty {penalty:.1}%"
        );
    }

    #[test]
    fn heavy_write_loads_reach_the_thirty_seven_percent_regime() {
        let m = ReadLatencyModel::heavy();
        let penalty = m.full_segment_penalty_pct(&WRITE_SIZE_GRID, 512 << 10);
        assert!(penalty > 25.0, "heavy penalty {penalty:.1}%");
        // And heavier loads always hurt more than typical ones.
        let typical =
            ReadLatencyModel::typical().full_segment_penalty_pct(&WRITE_SIZE_GRID, 512 << 10);
        assert!(penalty > typical);
    }

    #[test]
    fn saturation_is_reported_as_none() {
        let mut m = ReadLatencyModel::typical();
        m.read_rate_hz = 1000.0;
        assert_eq!(m.mean_read_response_ms(512 << 10), None);
    }

    #[test]
    fn response_has_an_interior_minimum() {
        let m = ReadLatencyModel::typical();
        let first = m.mean_read_response_ms(WRITE_SIZE_GRID[0]).unwrap();
        let best = m
            .mean_read_response_ms(m.optimal_write_bytes(&WRITE_SIZE_GRID))
            .unwrap();
        let last = m.mean_read_response_ms(512 << 10).unwrap();
        assert!(best < first, "tiny writes thrash positioning");
        assert!(best < last, "full segments lengthen residuals");
    }

    #[test]
    fn utilization_decreases_with_write_size() {
        let m = ReadLatencyModel::typical();
        assert!(m.utilization(32 << 10) > m.utilization(512 << 10));
    }
}
