//! Trace-driven simulation of one LFS file system, with and without an
//! NVRAM write buffer (§3).
//!
//! Without a buffer ([`WriteBufferMode::None`]) this reproduces the Sprite
//! behaviour the paper measured: an `fsync` makes LFS "immediately write
//! out whatever dirty data is present" (a partial segment), the 5-second
//! sweep flushes data older than 30 seconds (timeout partials), and a full
//! segment's worth of accumulated dirty data is written as a full segment.
//!
//! With [`WriteBufferMode::FsyncAbsorb`] — the paper's proposal — fsync'd
//! data goes into NVRAM instead of forcing a disk write. Buffered data
//! piggybacks on the next segment written for any other reason, so the
//! eliminated accesses are exactly the fsync-forced partials (Table 3's
//! second column, the paper's 10–25% / 90% reductions).
//!
//! [`WriteBufferMode::StageAll`] is the stronger variant §3's disk-space
//! discussion assumes ("Using NVRAM would eliminate partial segment
//! writes"): *all* flushed data stages through NVRAM and only full
//! segments ever reach the disk.

use nvfs_faults::{ReliabilityStats, ServerCrashFault};
use nvfs_types::{blocks_of_range, FileId, RangeSet, SimDuration, SimTime};

use nvfs_trace::synth::lfs_workload::{FsWorkload, LfsOpKind};

use crate::cleaner::{Cleaner, CleanerConfig, CleanerStats};
use crate::dirty::DirtyCache;
use crate::layout::{SegmentCause, SegmentRecord, SEGMENT_BYTES};
use crate::log::{Chunks, SegmentWriter};

/// NVRAM write-buffer operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteBufferMode {
    /// No NVRAM: fsyncs and timeouts write partial segments directly.
    None,
    /// NVRAM absorbs fsync-forced writes; buffered data piggybacks on the
    /// next ordinary segment write (or is flushed when the buffer fills).
    FsyncAbsorb {
        /// Buffer capacity in bytes (the paper studies ½ MB per FS).
        capacity: u64,
    },
    /// All flushed data stages through NVRAM; only full segments reach the
    /// disk (plus one final flush at shutdown).
    StageAll {
        /// Buffer capacity in bytes; must hold at least one segment.
        capacity: u64,
    },
}

/// Configuration for one file-system simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LfsConfig {
    /// Segment size in bytes (512 KB in Sprite).
    pub segment_bytes: u64,
    /// Sweep period of the server block cleaner (5 s in Sprite).
    pub sweep_period: SimDuration,
    /// Age at which dirty data is flushed (30 s in Sprite).
    pub writeback_age: SimDuration,
    /// NVRAM write-buffer mode.
    pub buffer: WriteBufferMode,
    /// Optional garbage-collector configuration.
    pub cleaner: Option<CleanerConfig>,
}

impl LfsConfig {
    /// Sprite defaults with no NVRAM buffer.
    pub fn direct() -> Self {
        LfsConfig {
            segment_bytes: SEGMENT_BYTES,
            sweep_period: SimDuration::from_secs(5),
            writeback_age: SimDuration::from_secs(30),
            buffer: WriteBufferMode::None,
            cleaner: None,
        }
    }

    /// Sprite defaults with a fsync-absorbing NVRAM buffer of `capacity`
    /// bytes (the paper's headline configuration uses ½ MB).
    pub fn with_fsync_buffer(capacity: u64) -> Self {
        LfsConfig {
            buffer: WriteBufferMode::FsyncAbsorb { capacity },
            ..LfsConfig::direct()
        }
    }

    /// Sprite defaults with a full staging buffer of `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is smaller than one segment.
    pub fn with_staging_buffer(capacity: u64) -> Self {
        assert!(
            capacity >= SEGMENT_BYTES,
            "staging buffer must hold a full segment"
        );
        LfsConfig {
            buffer: WriteBufferMode::StageAll { capacity },
            ..LfsConfig::direct()
        }
    }
}

impl Default for LfsConfig {
    fn default() -> Self {
        LfsConfig::direct()
    }
}

/// Results of simulating one file system over one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct FsReport {
    /// File-system name (e.g. `/user6`).
    pub name: String,
    /// Every segment written, in log order.
    pub records: Vec<SegmentRecord>,
    /// Application fsync calls observed.
    pub fsync_ops: u64,
    /// Fsync calls absorbed by the NVRAM buffer (no disk access).
    pub fsyncs_absorbed: u64,
    /// Page-granular bytes those absorbed fsyncs copied into NVRAM: the
    /// buffer stages whole 4 KB blocks, so this is the *paging* cost basis
    /// the WAL's exact-byte *logging* appends are compared against.
    pub fsync_absorbed_page_bytes: u64,
    /// Application bytes written into the file system.
    pub app_write_bytes: u64,
    /// Cleaner activity.
    pub cleaner: CleanerStats,
}

impl FsReport {
    /// Disk write accesses = segment writes, excluding cleaner traffic.
    pub fn disk_write_accesses(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.cause != SegmentCause::Cleaner)
            .count()
    }

    /// Number of segments with the given cause.
    pub fn count(&self, cause: SegmentCause) -> usize {
        self.records.iter().filter(|r| r.cause == cause).count()
    }

    /// Partial segments (all causes except Full and Cleaner).
    pub fn partial_count(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.is_partial() && r.cause != SegmentCause::Cleaner)
            .count()
    }

    /// Percentage of segment writes that are partial (Table 3 column 1).
    pub fn pct_partial(&self) -> f64 {
        percentage(self.partial_count(), self.disk_write_accesses())
    }

    /// Percentage of segment writes that are fsync-forced partials
    /// (Table 3 column 2).
    pub fn pct_fsync_partial(&self) -> f64 {
        percentage(self.count(SegmentCause::Fsync), self.disk_write_accesses())
    }

    /// Average file-data kilobytes per partial segment (Table 4).
    pub fn avg_partial_kb(&self) -> Option<f64> {
        average_kb(
            self.records
                .iter()
                .filter(|r| r.is_partial() && r.cause != SegmentCause::Cleaner),
        )
    }

    /// Average file-data kilobytes per fsync-forced partial (Table 4).
    pub fn avg_fsync_partial_kb(&self) -> Option<f64> {
        average_kb(
            self.records
                .iter()
                .filter(|r| r.cause == SegmentCause::Fsync),
        )
    }

    /// File data bytes written to disk (excluding cleaner copies).
    pub fn data_bytes(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.cause != SegmentCause::Cleaner)
            .map(|r| r.data_bytes)
            .sum()
    }

    /// Total on-disk bytes including metadata and summary blocks.
    pub fn on_disk_bytes(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.cause != SegmentCause::Cleaner)
            .map(SegmentRecord::on_disk_bytes)
            .sum()
    }

    /// Fraction of on-disk bytes that is metadata/summary overhead.
    pub fn overhead_fraction(&self) -> f64 {
        let total = self.on_disk_bytes();
        if total == 0 {
            return 0.0;
        }
        1.0 - self.data_bytes() as f64 / total as f64
    }
}

/// Disk-time accounting for a report, using the §3 cost model: every
/// segment write pays one positioning operation (average seek plus average
/// rotational latency) and then transfers its on-disk bytes — the
/// amortization argument behind LFS's half-megabyte segments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskTime {
    /// Total disk busy time in milliseconds.
    pub total_ms: f64,
    /// Pure data-transfer time in milliseconds.
    pub transfer_ms: f64,
}

impl DiskTime {
    /// Fraction of raw disk bandwidth achieved.
    pub fn utilization(&self) -> f64 {
        if self.total_ms == 0.0 {
            0.0
        } else {
            self.transfer_ms / self.total_ms
        }
    }
}

impl FsReport {
    /// Computes disk busy time and bandwidth utilization for this report's
    /// segment writes (excluding cleaner traffic) on the given disk.
    ///
    /// Tiny fsync-forced partials pay the same positioning cost as a full
    /// 512 KB segment while transferring a hundredth of the data — this is
    /// the §3 bandwidth argument in time units.
    pub fn disk_time(&self, disk: &nvfs_disk::DiskParams) -> DiskTime {
        let mut total_ms = 0.0;
        let mut transfer_ms = 0.0;
        for r in self
            .records
            .iter()
            .filter(|r| r.cause != SegmentCause::Cleaner)
        {
            let t = disk.transfer_ms(r.on_disk_bytes());
            transfer_ms += t;
            total_ms += disk.avg_seek_ms + disk.avg_rotation_ms() + t;
        }
        DiskTime {
            total_ms,
            transfer_ms,
        }
    }
}

fn percentage(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

fn average_kb<'a, I: Iterator<Item = &'a SegmentRecord>>(records: I) -> Option<f64> {
    let mut total = 0u64;
    let mut n = 0u64;
    for r in records {
        total += r.data_bytes;
        n += 1;
    }
    (n > 0).then(|| total as f64 / n as f64 / 1024.0)
}

/// Simulates `workload` under `config` and returns the report.
///
/// # Examples
///
/// ```
/// use nvfs_lfs::fs::{run_filesystem, LfsConfig};
/// use nvfs_trace::synth::lfs_workload::{sprite_server_workloads, ServerWorkloadConfig};
///
/// let ws = sprite_server_workloads(&ServerWorkloadConfig::tiny());
/// let report = run_filesystem(&ws[0], &LfsConfig::direct());
/// assert!(report.disk_write_accesses() > 0);
/// assert!(report.pct_fsync_partial() > 50.0); // /user6 is fsync-bound
/// ```
pub fn run_filesystem(workload: &FsWorkload, config: &LfsConfig) -> FsReport {
    run_filesystem_faulted(workload, config, &[]).0
}

/// Like [`run_filesystem`], but with injected server crashes: at each crash
/// the volatile dirty cache (the in-memory partial-segment write buffer)
/// is lost, while NVRAM-staged data survives and is replayed into the log
/// on restart as [`SegmentCause::Recovery`] segments. A torn replay write
/// is detected and written a second time — wasted disk work but no loss,
/// which is the §3 durability claim for the NVRAM write buffer.
///
/// Crashes must be sorted by time (as [`FaultSchedule`] compiles them).
///
/// [`FaultSchedule`]: nvfs_faults::FaultSchedule
pub fn run_filesystem_faulted(
    workload: &FsWorkload,
    config: &LfsConfig,
    crashes: &[ServerCrashFault],
) -> (FsReport, ReliabilityStats) {
    let mut reliability = ReliabilityStats::default();
    let mut next_fault = 0usize;
    let mut writer = SegmentWriter::new(config.segment_bytes);
    let mut dirty = DirtyCache::new();
    let mut nvram: Vec<(FileId, RangeSet)> = Vec::new();
    let mut nvram_bytes: u64 = 0;
    let mut cleaner = config.cleaner.map(Cleaner::new);
    let mut fsync_ops = 0u64;
    let mut fsyncs_absorbed = 0u64;
    let mut fsync_absorbed_page_bytes = 0u64;
    let mut app_write_bytes = 0u64;
    let mut next_sweep = SimTime::ZERO + config.sweep_period;
    let mut end_time = SimTime::ZERO;

    let write_out = |writer: &mut SegmentWriter,
                     cleaner: &mut Option<Cleaner>,
                     t: SimTime,
                     chunks: &Chunks,
                     cause: SegmentCause| {
        if chunks.iter().all(|(_, r)| r.is_empty()) {
            return;
        }
        writer.write_all(t, chunks, cause, false);
        if let Some(c) = cleaner {
            c.maybe_clean(t, writer);
        }
    };

    // The server dies: the in-memory partial-segment buffer is lost, the
    // NVRAM staging buffer survives and is replayed on restart. A replay
    // write torn by the crash fails its summary checksum; roll-forward
    // truncates it and the segment is written again from NVRAM (wasted
    // access, no loss).
    macro_rules! server_crash {
        ($fault:expr) => {{
            let fault: &ServerCrashFault = $fault;
            reliability.server_crashes += 1;
            let lost = dirty.take_all();
            reliability.bytes_lost_buffer += lost.iter().map(|(_, r)| r.len_bytes()).sum::<u64>();
            if nvram_bytes > 0 {
                let staged = std::mem::take(&mut nvram);
                reliability.bytes_replayed += nvram_bytes;
                if let Some(fraction) = fault.torn_segment {
                    let tail = writer.write_all_torn(
                        fault.time,
                        &staged,
                        SegmentCause::Recovery,
                        fraction,
                    );
                    let rolled = writer.roll_forward(fault.time);
                    reliability.bytes_rewritten_torn += rolled.truncated_data_bytes;
                    if !tail.is_empty() {
                        write_out(
                            &mut writer,
                            &mut cleaner,
                            fault.time,
                            &tail,
                            SegmentCause::Recovery,
                        );
                    }
                } else {
                    write_out(
                        &mut writer,
                        &mut cleaner,
                        fault.time,
                        &staged,
                        SegmentCause::Recovery,
                    );
                }
                nvram_bytes = 0;
            }
        }};
    }

    for op in &workload.ops {
        // Fire server crashes due by this op's time.
        while next_fault < crashes.len() && crashes[next_fault].time <= op.time {
            server_crash!(&crashes[next_fault]);
            next_fault += 1;
        }
        end_time = end_time.max(op.time);
        // Advance the 5-second sweep: flush data older than the write-back
        // age, folding in any NVRAM-buffered data (piggyback).
        while next_sweep <= op.time {
            if next_sweep >= SimTime::ZERO + config.writeback_age {
                let cutoff = next_sweep - config.writeback_age;
                let aged = dirty.take_older_than(cutoff);
                if !aged.is_empty() {
                    let mut chunks = aged;
                    if matches!(config.buffer, WriteBufferMode::FsyncAbsorb { .. }) {
                        chunks.append(&mut nvram);
                        nvram_bytes = 0;
                    }
                    match config.buffer {
                        WriteBufferMode::StageAll { capacity } => {
                            // Timeout data stages into NVRAM instead.
                            for (f, r) in chunks {
                                nvram_bytes += r.len_bytes();
                                nvram.push((f, r));
                            }
                            drain_full_segments(
                                &mut writer,
                                &mut cleaner,
                                next_sweep,
                                &mut nvram,
                                &mut nvram_bytes,
                                capacity,
                                config.segment_bytes,
                            );
                        }
                        _ => {
                            write_out(
                                &mut writer,
                                &mut cleaner,
                                next_sweep,
                                &chunks,
                                SegmentCause::Timeout,
                            );
                        }
                    }
                }
            }
            next_sweep += config.sweep_period;
        }

        match op.kind {
            LfsOpKind::Write { file, range } => {
                app_write_bytes += range.len();
                dirty.add(file, range, op.time);
                // A full segment's worth of dirty data accumulated: write
                // the full segments now, keep the tail dirty.
                if dirty.total_bytes() >= config.segment_bytes {
                    let mut chunks = dirty.take_all();
                    if matches!(config.buffer, WriteBufferMode::FsyncAbsorb { .. }) {
                        chunks.append(&mut nvram);
                        nvram_bytes = 0;
                    }
                    let (_, remainder) = writer.write_full_only(op.time, &chunks);
                    if let Some(c) = &mut cleaner {
                        c.maybe_clean(op.time, &mut writer);
                    }
                    for (f, r) in remainder {
                        for piece in r.iter() {
                            dirty.add(f, piece, op.time);
                        }
                    }
                }
            }
            LfsOpKind::Fsync { file } => {
                fsync_ops += 1;
                match config.buffer {
                    WriteBufferMode::None => {
                        // An fsync that finds no dirty data for its file is
                        // free; otherwise LFS "immediately writes out
                        // whatever dirty data is present" — all of it.
                        if dirty.has_file(file) {
                            let chunks = dirty.take_all();
                            write_out(
                                &mut writer,
                                &mut cleaner,
                                op.time,
                                &chunks,
                                SegmentCause::Fsync,
                            );
                        }
                    }
                    WriteBufferMode::FsyncAbsorb { capacity } => {
                        if let Some(r) = dirty.take_file(file) {
                            fsyncs_absorbed += 1;
                            fsync_absorbed_page_bytes += page_bytes(file, &r);
                            nvram_bytes += r.len_bytes();
                            nvram.push((file, r));
                            if nvram_bytes >= capacity {
                                let chunks = std::mem::take(&mut nvram);
                                nvram_bytes = 0;
                                write_out(
                                    &mut writer,
                                    &mut cleaner,
                                    op.time,
                                    &chunks,
                                    SegmentCause::NvramFull,
                                );
                            }
                        }
                    }
                    WriteBufferMode::StageAll { capacity } => {
                        if let Some(r) = dirty.take_file(file) {
                            fsyncs_absorbed += 1;
                            fsync_absorbed_page_bytes += page_bytes(file, &r);
                            nvram_bytes += r.len_bytes();
                            nvram.push((file, r));
                            drain_full_segments(
                                &mut writer,
                                &mut cleaner,
                                op.time,
                                &mut nvram,
                                &mut nvram_bytes,
                                capacity,
                                config.segment_bytes,
                            );
                        }
                    }
                }
            }
            LfsOpKind::Delete { file } => {
                dirty.discard_file(file);
                nvram.retain(|(f, _)| *f != file);
                nvram_bytes = nvram.iter().map(|(_, r)| r.len_bytes()).sum();
                writer.usage_mut().kill_file(file);
            }
        }
    }

    // Crashes scheduled past the end of the recorded workload still fire:
    // the plan's duration may exceed the op stream's.
    while next_fault < crashes.len() {
        end_time = end_time.max(crashes[next_fault].time);
        server_crash!(&crashes[next_fault]);
        next_fault += 1;
    }

    // Shutdown: flush whatever is left.
    let mut rest = dirty.take_all();
    rest.append(&mut nvram);
    write_out(
        &mut writer,
        &mut cleaner,
        end_time,
        &rest,
        SegmentCause::Shutdown,
    );

    (
        FsReport {
            name: workload.name.to_string(),
            records: writer.records().to_vec(),
            fsync_ops,
            fsyncs_absorbed,
            fsync_absorbed_page_bytes,
            app_write_bytes,
            cleaner: cleaner.map_or(CleanerStats::default(), |c| c.stats()),
        },
        reliability,
    )
}

/// Bytes NVRAM actually copies when staging `r` at page granularity:
/// distinct 4 KB blocks touched, times the block size.
fn page_bytes(file: FileId, r: &RangeSet) -> u64 {
    let mut blocks = std::collections::BTreeSet::new();
    for piece in r.iter() {
        for b in blocks_of_range(file, piece) {
            blocks.insert(b.index);
        }
    }
    blocks.len() as u64 * 4096
}

/// Writes full segments out of the NVRAM staging buffer; forces a flush if
/// the buffer exceeded its capacity.
#[allow(clippy::too_many_arguments)]
fn drain_full_segments(
    writer: &mut SegmentWriter,
    cleaner: &mut Option<Cleaner>,
    t: SimTime,
    nvram: &mut Vec<(FileId, RangeSet)>,
    nvram_bytes: &mut u64,
    capacity: u64,
    segment_bytes: u64,
) {
    if *nvram_bytes >= segment_bytes {
        let chunks = std::mem::take(nvram);
        let (_, remainder) = writer.write_full_only(t, &chunks);
        *nvram = remainder;
        *nvram_bytes = nvram.iter().map(|(_, r)| r.len_bytes()).sum();
        if let Some(c) = cleaner {
            c.maybe_clean(t, writer);
        }
    }
    if *nvram_bytes > capacity {
        // Overflow: force everything out.
        let chunks = std::mem::take(nvram);
        *nvram_bytes = 0;
        writer.write_all(t, &chunks, SegmentCause::NvramFull, false);
        if let Some(c) = cleaner {
            c.maybe_clean(t, writer);
        }
    }
}

/// Runs all eight Sprite file systems under `config`.
pub fn run_server(workloads: &[FsWorkload], config: &LfsConfig) -> Vec<FsReport> {
    // Each file system simulates independently; fan out and rejoin in
    // workload order, so the report vector matches a sequential run.
    nvfs_par::par_map(workloads.iter().collect(), nvfs_par::jobs(), |w| {
        run_filesystem(w, config)
    })
}

/// Runs all eight Sprite file systems under `config` with the same
/// injected server-crash schedule, merging the per-FS reliability
/// accounting in workload order (deterministic at any job count).
pub fn run_server_faulted(
    workloads: &[FsWorkload],
    config: &LfsConfig,
    crashes: &[ServerCrashFault],
) -> (Vec<FsReport>, ReliabilityStats) {
    let results = nvfs_par::par_map(workloads.iter().collect(), nvfs_par::jobs(), |w| {
        run_filesystem_faulted(w, config, crashes)
    });
    let mut merged = ReliabilityStats::default();
    let mut reports = Vec::with_capacity(results.len());
    for (report, reliability) in results {
        merged.merge(&reliability);
        reports.push(report);
    }
    (reports, merged)
}

/// Share of total segment writes (across `reports`) issued by each file
/// system — Table 3's last column.
pub fn segment_share(reports: &[FsReport]) -> Vec<(String, f64)> {
    let total: usize = reports.iter().map(FsReport::disk_write_accesses).sum();
    reports
        .iter()
        .map(|r| {
            (
                r.name.clone(),
                percentage(r.disk_write_accesses(), total.max(1)),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvfs_trace::synth::lfs_workload::{sprite_server_workloads, LfsOp, ServerWorkloadConfig};
    use nvfs_types::ByteRange;

    fn ops_writes_and_fsync() -> FsWorkload {
        FsWorkload {
            name: "/test",
            ops: vec![
                LfsOp {
                    time: SimTime::from_secs(1),
                    kind: LfsOpKind::Write {
                        file: FileId(0),
                        range: ByteRange::new(0, 8192),
                    },
                },
                LfsOp {
                    time: SimTime::from_secs(2),
                    kind: LfsOpKind::Fsync { file: FileId(0) },
                },
                LfsOp {
                    time: SimTime::from_secs(3),
                    kind: LfsOpKind::Fsync { file: FileId(0) },
                },
            ],
        }
    }

    #[test]
    fn fsync_forces_partial_segment_without_buffer() {
        let r = run_filesystem(&ops_writes_and_fsync(), &LfsConfig::direct());
        assert_eq!(r.count(SegmentCause::Fsync), 1);
        assert_eq!(r.fsync_ops, 2);
        // The second fsync found nothing dirty: no extra segment.
        assert_eq!(r.disk_write_accesses(), 1);
        assert_eq!(r.pct_fsync_partial(), 100.0);
    }

    #[test]
    fn buffer_absorbs_fsync() {
        let r = run_filesystem(
            &ops_writes_and_fsync(),
            &LfsConfig::with_fsync_buffer(512 << 10),
        );
        assert_eq!(r.count(SegmentCause::Fsync), 0);
        assert_eq!(r.fsyncs_absorbed, 1);
        // Data still reaches disk eventually (shutdown flush).
        assert_eq!(r.count(SegmentCause::Shutdown), 1);
        assert_eq!(r.data_bytes(), 8192);
    }

    #[test]
    fn timeout_flush_produces_timeout_partials() {
        let w = FsWorkload {
            name: "/test",
            ops: vec![
                LfsOp {
                    time: SimTime::from_secs(1),
                    kind: LfsOpKind::Write {
                        file: FileId(0),
                        range: ByteRange::new(0, 8192),
                    },
                },
                // A later op advances the sweep clock past 31 s.
                LfsOp {
                    time: SimTime::from_secs(120),
                    kind: LfsOpKind::Write {
                        file: FileId(1),
                        range: ByteRange::new(0, 4096),
                    },
                },
            ],
        };
        let r = run_filesystem(&w, &LfsConfig::direct());
        assert_eq!(r.count(SegmentCause::Timeout), 1);
    }

    #[test]
    fn accumulated_data_writes_full_segments() {
        let mut ops = Vec::new();
        for i in 0..40u64 {
            ops.push(LfsOp {
                time: SimTime::from_millis(i * 10),
                kind: LfsOpKind::Write {
                    file: FileId(0),
                    range: ByteRange::at(i * 32 * 1024, 32 * 1024),
                },
            });
        }
        let w = FsWorkload { name: "/test", ops };
        let r = run_filesystem(&w, &LfsConfig::direct());
        assert!(
            r.count(SegmentCause::Full) >= 2,
            "records: {:?}",
            r.records.len()
        );
    }

    #[test]
    fn stage_all_eliminates_partials() {
        let ws = sprite_server_workloads(&ServerWorkloadConfig::tiny());
        let staged = run_filesystem(&ws[0], &LfsConfig::with_staging_buffer(1 << 20));
        // Only Full segments plus the final shutdown flush reach disk.
        let partials = staged
            .records
            .iter()
            .filter(|r| r.is_partial() && r.cause != SegmentCause::Shutdown)
            .count();
        assert_eq!(
            partials,
            0,
            "{:?}",
            staged.records.iter().map(|r| r.cause).collect::<Vec<_>>()
        );
    }

    #[test]
    fn buffer_reduces_user6_disk_accesses_by_ninety_percent() {
        let ws = sprite_server_workloads(&ServerWorkloadConfig::tiny());
        let user6 = &ws[0];
        let direct = run_filesystem(user6, &LfsConfig::direct());
        let buffered = run_filesystem(user6, &LfsConfig::with_fsync_buffer(512 << 10));
        let reduction =
            1.0 - buffered.disk_write_accesses() as f64 / direct.disk_write_accesses() as f64;
        assert!(reduction > 0.75, "reduction was {:.2}", reduction);
        // No data lost: everything reaches the disk in both runs.
        assert!(direct.data_bytes() > 0);
        assert!(buffered.data_bytes() >= direct.data_bytes() * 9 / 10);
    }

    #[test]
    fn deletes_absorb_dirty_data() {
        let w = FsWorkload {
            name: "/test",
            ops: vec![
                LfsOp {
                    time: SimTime::from_secs(1),
                    kind: LfsOpKind::Write {
                        file: FileId(0),
                        range: ByteRange::new(0, 8192),
                    },
                },
                LfsOp {
                    time: SimTime::from_secs(2),
                    kind: LfsOpKind::Delete { file: FileId(0) },
                },
            ],
        };
        let r = run_filesystem(&w, &LfsConfig::direct());
        assert_eq!(r.disk_write_accesses(), 0);
        assert_eq!(r.data_bytes(), 0);
    }

    #[test]
    fn disk_time_punishes_partial_segments() {
        use nvfs_disk::DiskParams;
        let ws = sprite_server_workloads(&ServerWorkloadConfig::tiny());
        let disk = DiskParams::sprite_era();
        // /user6 (tiny fsync partials) wastes bandwidth; the buffered run
        // recovers most of it.
        let direct = run_filesystem(&ws[0], &LfsConfig::direct()).disk_time(&disk);
        let buffered =
            run_filesystem(&ws[0], &LfsConfig::with_fsync_buffer(512 << 10)).disk_time(&disk);
        // The buffer removes thousands of positioning operations, so the
        // disk is busy for less total time at higher utilization.
        assert!(
            buffered.utilization() > direct.utilization(),
            "buffered {:.3} vs direct {:.3}",
            buffered.utilization(),
            direct.utilization()
        );
        assert!(
            buffered.total_ms < direct.total_ms * 0.7,
            "{buffered:?} vs {direct:?}"
        );
    }

    fn crash_at(secs: u64) -> ServerCrashFault {
        ServerCrashFault {
            time: SimTime::from_secs(secs),
            torn_segment: None,
        }
    }

    #[test]
    fn server_crash_loses_the_volatile_buffer_without_nvram() {
        // One write, then a crash before any flush: everything is lost.
        let w = FsWorkload {
            name: "/test",
            ops: vec![
                LfsOp {
                    time: SimTime::from_secs(1),
                    kind: LfsOpKind::Write {
                        file: FileId(0),
                        range: ByteRange::new(0, 8192),
                    },
                },
                LfsOp {
                    time: SimTime::from_secs(10),
                    kind: LfsOpKind::Fsync { file: FileId(1) },
                },
            ],
        };
        let (r, rel) = run_filesystem_faulted(&w, &LfsConfig::direct(), &[crash_at(5)]);
        assert_eq!(rel.server_crashes, 1);
        assert_eq!(rel.bytes_lost_buffer, 8192);
        assert_eq!(rel.bytes_replayed, 0);
        assert_eq!(r.data_bytes(), 0, "the lost bytes never reach disk");
    }

    #[test]
    fn nvram_staged_data_survives_a_server_crash() {
        // Write + fsync stages the data into NVRAM; the crash then loses
        // nothing and the restart replays the buffer into the log.
        let w = ops_writes_and_fsync();
        let cfg = LfsConfig::with_fsync_buffer(512 << 10);
        let (r, rel) = run_filesystem_faulted(&w, &cfg, &[crash_at(5)]);
        assert_eq!(rel.server_crashes, 1);
        assert_eq!(rel.bytes_lost_buffer, 0);
        assert_eq!(rel.bytes_replayed, 8192);
        assert_eq!(r.count(SegmentCause::Recovery), 1);
        assert_eq!(r.data_bytes(), 8192, "every byte reaches the disk");
        assert_eq!(rel.bytes_lost(), 0);
    }

    #[test]
    fn torn_replay_is_rewritten_not_lost() {
        let w = ops_writes_and_fsync();
        let cfg = LfsConfig::with_fsync_buffer(512 << 10);
        let torn = ServerCrashFault {
            time: SimTime::from_secs(5),
            torn_segment: Some(0.5),
        };
        let (r, rel) = run_filesystem_faulted(&w, &cfg, &[torn]);
        // The torn segment fails its checksum; roll-forward truncates the
        // whole intended segment, and it is rewritten from NVRAM in full.
        assert_eq!(rel.bytes_rewritten_torn, 8192);
        assert_eq!(rel.bytes_replayed, 8192);
        assert_eq!(rel.bytes_lost(), 0, "NVRAM lets the replay retry");
        // The truncated attempt leaves the log; only the rewrite remains.
        assert_eq!(r.count(SegmentCause::Recovery), 1);
        assert!(r.records.iter().all(|rec| rec.is_valid()));
    }

    #[test]
    fn faulted_run_with_no_crashes_matches_plain_run() {
        let ws = sprite_server_workloads(&ServerWorkloadConfig::tiny());
        let cfg = LfsConfig::with_fsync_buffer(512 << 10);
        let plain = run_filesystem(&ws[0], &cfg);
        let (faulted, rel) = run_filesystem_faulted(&ws[0], &cfg, &[]);
        assert_eq!(plain.records, faulted.records);
        assert_eq!(rel, ReliabilityStats::default());
    }

    #[test]
    fn server_runs_all_eight() {
        let ws = sprite_server_workloads(&ServerWorkloadConfig::tiny());
        let reports = run_server(&ws, &LfsConfig::direct());
        assert_eq!(reports.len(), 8);
        let shares = segment_share(&reports);
        let total: f64 = shares.iter().map(|(_, p)| p).sum();
        assert!((total - 100.0).abs() < 1.0);
        // /user6 dominates the segment count.
        assert!(shares[0].1 > 50.0, "user6 share {:.1}", shares[0].1);
    }
}
