//! On-disk layout constants and segment records (Figure 7).
//!
//! An LFS disk is a sequence of half-megabyte segments. Each segment holds
//! 4 KB file data blocks, at least one 4 KB metadata block per file that
//! has blocks in the segment, and a 512-byte summary block describing the
//! segment's contents. Partial segments carry the same fixed overheads
//! over less data — the source of the disk-space cost analyzed in §3 and
//! Table 4.

use nvfs_types::SimTime;

/// Segment size (512 KB, as in Sprite LFS).
pub const SEGMENT_BYTES: u64 = 512 * 1024;

/// Summary block appended to every segment.
pub const SUMMARY_BYTES: u64 = 512;

/// Size of one metadata block (one per file with blocks in the segment).
pub const METADATA_BLOCK_BYTES: u64 = 4096;

/// Why a segment was written to disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentCause {
    /// A full segment's worth of dirty data had accumulated.
    Full,
    /// An application fsync forced the write before the segment filled.
    Fsync,
    /// The 30-second timeout flushed aged dirty data.
    Timeout,
    /// The NVRAM write buffer reached capacity.
    NvramFull,
    /// The garbage collector rewrote live data.
    Cleaner,
    /// End-of-trace flush.
    Shutdown,
    /// Restart replay of the NVRAM write buffer after a server crash.
    Recovery,
    /// Lazy background drain of the NVRAM write-ahead log.
    WalDrain,
}

impl SegmentCause {
    /// Whether segments written for this cause count as "partial" in the
    /// paper's Table 3 (anything that isn't a naturally full segment or
    /// cleaner traffic).
    pub const fn is_forced(self) -> bool {
        matches!(
            self,
            SegmentCause::Fsync | SegmentCause::Timeout | SegmentCause::Shutdown
        )
    }

    /// Stable lowercase label (trace events, reports).
    pub const fn label(self) -> &'static str {
        match self {
            SegmentCause::Full => "full",
            SegmentCause::Fsync => "fsync",
            SegmentCause::Timeout => "timeout",
            SegmentCause::NvramFull => "nvram-full",
            SegmentCause::Cleaner => "cleaner",
            SegmentCause::Shutdown => "shutdown",
            SegmentCause::Recovery => "recovery",
            SegmentCause::WalDrain => "wal-drain",
        }
    }
}

/// One segment written to disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentRecord {
    /// Sequence number in the log.
    pub id: u64,
    /// When it was written.
    pub time: SimTime,
    /// Why it was written.
    pub cause: SegmentCause,
    /// File data bytes (whole 4 KB blocks) the write *intended* to put on
    /// disk. For a torn segment this exceeds what actually landed.
    pub data_bytes: u64,
    /// Distinct files with blocks in the segment.
    pub file_count: usize,
    /// The FNV-1a checksum the 512-byte summary block stores, computed
    /// over the segment's intended (file, block) content list before the
    /// write started.
    pub stored_checksum: u64,
    /// The checksum of the content actually on disk. A torn write leaves
    /// this different from [`stored_checksum`](SegmentRecord::stored_checksum),
    /// which is exactly how roll-forward recovery detects the tear.
    pub content_checksum: u64,
}

impl SegmentRecord {
    /// Whether the on-disk content matches the summary checksum. Recovery
    /// replays the log only up to the last valid segment; anything after
    /// fails this check and is truncated
    /// ([`SegmentWriter::roll_forward`](crate::log::SegmentWriter::roll_forward)).
    pub fn is_valid(&self) -> bool {
        self.stored_checksum == self.content_checksum
    }

    /// Metadata bytes: one 4 KB block per file, at least one.
    pub fn metadata_bytes(&self) -> u64 {
        (self.file_count.max(1) as u64) * METADATA_BLOCK_BYTES
    }

    /// Total bytes the segment occupies on disk.
    pub fn on_disk_bytes(&self) -> u64 {
        self.data_bytes + self.metadata_bytes() + SUMMARY_BYTES
    }

    /// Whether the segment is partial. The writer marks a segment
    /// [`SegmentCause::Full`] exactly when no further data block would have
    /// fit, so partiality is a property of the cause, independent of the
    /// configured segment size.
    pub fn is_partial(&self) -> bool {
        self.cause != SegmentCause::Full
    }

    /// Fraction of the segment's on-disk bytes that is metadata + summary
    /// overhead rather than file data.
    pub fn overhead_fraction(&self) -> f64 {
        let total = self.on_disk_bytes();
        if total == 0 {
            return 0.0;
        }
        (self.metadata_bytes() + SUMMARY_BYTES) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(data_blocks: u64, files: usize, cause: SegmentCause) -> SegmentRecord {
        SegmentRecord {
            id: 0,
            time: SimTime::ZERO,
            cause,
            data_bytes: data_blocks * 4096,
            file_count: files,
            stored_checksum: 0,
            content_checksum: 0,
        }
    }

    #[test]
    fn tiny_fsync_partial_has_a_third_overhead() {
        // §3: on /user6 "the space taken up by the metadata and summary
        // blocks in partial segments is about one third of the segment"
        // for ~8 KB partials.
        let r = record(2, 1, SegmentCause::Fsync);
        assert!(r.is_partial());
        let f = r.overhead_fraction();
        assert!((0.3..0.4).contains(&f), "overhead {f}");
    }

    #[test]
    fn large_partial_has_eight_percent_overhead() {
        // §3: "On /sprite/src/kernel the overhead is only about 8% of each
        // partial segment" at ~55 KB.
        let r = record(13, 1, SegmentCause::Timeout); // 52 KB data
        let f = r.overhead_fraction();
        assert!((0.06..0.10).contains(&f), "overhead {f}");
    }

    #[test]
    fn full_segment_overhead_is_about_one_percent() {
        let data = SEGMENT_BYTES - METADATA_BLOCK_BYTES - SUMMARY_BYTES;
        let r = SegmentRecord {
            id: 0,
            time: SimTime::ZERO,
            cause: SegmentCause::Full,
            data_bytes: data,
            file_count: 1,
            stored_checksum: 0,
            content_checksum: 0,
        };
        assert!(!r.is_partial());
        assert!(r.overhead_fraction() < 0.01);
    }

    #[test]
    fn forced_causes() {
        assert!(SegmentCause::Fsync.is_forced());
        assert!(SegmentCause::Timeout.is_forced());
        assert!(!SegmentCause::Full.is_forced());
        assert!(!SegmentCause::Cleaner.is_forced());
        assert!(!SegmentCause::NvramFull.is_forced());
    }

    #[test]
    fn metadata_floor_is_one_block() {
        let r = record(1, 0, SegmentCause::Timeout);
        assert_eq!(r.metadata_bytes(), METADATA_BLOCK_BYTES);
    }
}
