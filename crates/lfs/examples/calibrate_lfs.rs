//! Scratch calibration harness for the §3 study: prints the Table 3/4
//! shapes and the write-buffer reductions for the synthetic server
//! workloads. Not part of the reproduction API.

use nvfs_lfs::fs::{run_server, segment_share, LfsConfig};
use nvfs_trace::synth::lfs_workload::{sprite_server_workloads, ServerWorkloadConfig};

fn main() {
    let cfg = ServerWorkloadConfig::small();
    let ws = sprite_server_workloads(&cfg);
    let direct = run_server(&ws, &LfsConfig::direct());
    let shares = segment_share(&direct);

    println!("== Table 3 shape (direct) ==");
    println!(
        "{:<20} {:>8} {:>9} {:>9} {:>8} {:>10} {:>10}",
        "fs", "segs", "%partial", "%fsync", "%share", "KB/part", "KB/fsync"
    );
    for (r, (_, share)) in direct.iter().zip(&shares) {
        println!(
            "{:<20} {:>8} {:>9.1} {:>9.1} {:>8.1} {:>10.1} {:>10.1}",
            r.name,
            r.disk_write_accesses(),
            r.pct_partial(),
            r.pct_fsync_partial(),
            share,
            r.avg_partial_kb().unwrap_or(0.0),
            r.avg_fsync_partial_kb().unwrap_or(0.0),
        );
    }

    let total_bytes: u64 = direct.iter().map(|r| r.data_bytes()).sum();
    println!("\n== byte shares (Table 4 last column) ==");
    for r in &direct {
        println!(
            "{:<20} {:>8.1} MB  {:>5.1}%  overhead {:>4.1}%",
            r.name,
            r.data_bytes() as f64 / (1 << 20) as f64,
            100.0 * r.data_bytes() as f64 / total_bytes as f64,
            100.0 * r.overhead_fraction(),
        );
    }

    println!("\n== write-buffer reduction (1/2 MB, fsync-absorbing) ==");
    let buffered = run_server(&ws, &LfsConfig::with_fsync_buffer(512 << 10));
    for (d, b) in direct.iter().zip(&buffered) {
        let red = if d.disk_write_accesses() == 0 {
            0.0
        } else {
            100.0 * (1.0 - b.disk_write_accesses() as f64 / d.disk_write_accesses() as f64)
        };
        println!(
            "{:<20} {:>6} -> {:>6} accesses  ({:>5.1}% reduction)",
            d.name,
            d.disk_write_accesses(),
            b.disk_write_accesses(),
            red
        );
    }
}
