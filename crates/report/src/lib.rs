//! Tables and figure series for the nvfs reproductions.
//!
//! Every experiment in `nvfs-experiments` renders its output through these
//! types, so each of the paper's tables and figures has a uniform ASCII and
//! CSV representation.
//!
//! # Examples
//!
//! ```
//! use nvfs_report::{Cell, Figure, Series, Table};
//!
//! let mut t = Table::new("Table 3", &["fs", "% partial"]);
//! t.push_row(vec![Cell::from("/user6"), Cell::Pct(97.0)]);
//! assert!(t.render().contains("97.0%"));
//!
//! let mut fig = Figure::new("Figure 3", "MB NVRAM", "traffic %");
//! fig.push(Series::new("Trace 7", vec![(1.0, 35.0)]));
//! assert_eq!(fig.all_series().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figure;
pub mod plot;
pub mod run;
pub mod table;

pub use figure::{Figure, Series};
pub use plot::{render_plot, PlotOptions};
pub use run::catching;
pub use table::{Cell, Table};
