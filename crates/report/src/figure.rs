//! Figures: labelled families of (x, y) series, as the paper's plots.

/// One curve of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Curve label (e.g. `Trace 7` or `unified`).
    pub name: String,
    /// `(x, y)` points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a named series.
    pub fn new(name: &str, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.to_string(),
            points,
        }
    }

    /// The y value at the given x, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (*px - x).abs() < 1e-9)
            .map(|(_, y)| *y)
    }

    /// Whether y never increases as x grows (diminishing-returns curves).
    pub fn is_nonincreasing(&self) -> bool {
        self.points.windows(2).all(|w| w[1].1 <= w[0].1 + 1e-9)
    }
}

/// A titled figure with axes and one or more series.
///
/// # Examples
///
/// ```
/// use nvfs_report::figure::{Figure, Series};
///
/// let mut f = Figure::new("Fig 3", "Megabytes NVRAM", "Net write traffic (%)");
/// f.push(Series::new("Trace 7", vec![(0.125, 70.0), (1.0, 35.0)]));
/// assert!(f.to_csv().contains("Trace 7"));
/// assert!(f.series("Trace 7").unwrap().is_nonincreasing());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Figure title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(title: &str, x_label: &str, y_label: &str) -> Self {
        Figure {
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            series: Vec::new(),
        }
    }

    /// Appends a series.
    pub fn push(&mut self, series: Series) {
        self.series.push(series);
    }

    /// All series.
    pub fn all_series(&self) -> &[Series] {
        &self.series
    }

    /// Looks up a series by name.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// CSV: `series,x,y` rows.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,x,y\n");
        for s in &self.series {
            for (x, y) in &s.points {
                out.push_str(&format!("{},{x},{y}\n", s.name));
            }
        }
        out
    }

    /// A compact text rendering: one line per series with its points.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} — x: {}, y: {}\n",
            self.title, self.x_label, self.y_label
        );
        for s in &self.series {
            let pts: Vec<String> = s
                .points
                .iter()
                .map(|(x, y)| format!("({x:.3}, {y:.1})"))
                .collect();
            out.push_str(&format!("  {:<14} {}\n", s.name, pts.join(" ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_queries() {
        let s = Series::new("a", vec![(1.0, 10.0), (2.0, 5.0)]);
        assert_eq!(s.y_at(2.0), Some(5.0));
        assert_eq!(s.y_at(3.0), None);
        assert!(s.is_nonincreasing());
        let up = Series::new("b", vec![(1.0, 1.0), (2.0, 2.0)]);
        assert!(!up.is_nonincreasing());
    }

    #[test]
    fn figure_render_and_csv() {
        let mut f = Figure::new("F", "x", "y");
        f.push(Series::new("s", vec![(0.5, 50.0)]));
        assert!(f.render().contains("(0.500, 50.0)"));
        assert_eq!(f.to_csv(), "series,x,y\ns,0.5,50\n");
        assert_eq!(f.all_series().len(), 1);
        assert!(f.series("missing").is_none());
    }
}
