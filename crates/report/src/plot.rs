//! ASCII line plots for [`Figure`]s.
//!
//! The paper's figures are log-x line charts; [`render_plot`] draws a
//! terminal approximation so examples and benches can show curve *shapes*,
//! not just point lists.

use crate::figure::Figure;

/// Options for [`render_plot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlotOptions {
    /// Plot body width in characters.
    pub width: usize,
    /// Plot body height in rows.
    pub height: usize,
    /// Use a logarithmic x axis (the paper's Figures 2–4).
    pub log_x: bool,
}

impl Default for PlotOptions {
    fn default() -> Self {
        PlotOptions {
            width: 64,
            height: 16,
            log_x: false,
        }
    }
}

/// Markers assigned to series in order.
const MARKERS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '~'];

/// Renders `figure` as an ASCII plot with a legend.
///
/// Series beyond the eighth reuse markers. Returns an empty string for a
/// figure with no points.
///
/// # Examples
///
/// ```
/// use nvfs_report::figure::{Figure, Series};
/// use nvfs_report::plot::{render_plot, PlotOptions};
///
/// let mut f = Figure::new("Demo", "x", "y");
/// f.push(Series::new("a", vec![(1.0, 0.0), (2.0, 10.0)]));
/// let s = render_plot(&f, PlotOptions::default());
/// assert!(s.contains("Demo"));
/// assert!(s.contains("a"));
/// ```
pub fn render_plot(figure: &Figure, opts: PlotOptions) -> String {
    let points: Vec<(f64, f64)> = figure
        .all_series()
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if points.is_empty() || opts.width < 2 || opts.height < 2 {
        return String::new();
    }
    let xform = |x: f64| {
        if opts.log_x {
            x.max(f64::MIN_POSITIVE).log10()
        } else {
            x
        }
    };
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &points {
        let x = xform(x);
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if (x_max - x_min).abs() < f64::EPSILON {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        y_max = y_min + 1.0;
    }

    let mut grid = vec![vec![' '; opts.width]; opts.height];
    for (si, series) in figure.all_series().iter().enumerate() {
        let marker = MARKERS[si % MARKERS.len()];
        // Plot line segments between consecutive points, sampled per column.
        for pair in series.points.windows(2) {
            let (x0, y0) = (xform(pair[0].0), pair[0].1);
            let (x1, y1) = (xform(pair[1].0), pair[1].1);
            let c0 = col(x0, x_min, x_max, opts.width);
            let c1 = col(x1, x_min, x_max, opts.width);
            let (lo, hi) = (c0.min(c1), c0.max(c1));
            #[allow(clippy::needless_range_loop)] // rows vary per column
            for c in lo..=hi {
                let frac = if hi == lo {
                    0.0
                } else {
                    (c - lo) as f64 / (hi - lo) as f64
                };
                let y = if c0 <= c1 {
                    y0 + frac * (y1 - y0)
                } else {
                    y1 + (1.0 - frac) * (y0 - y1)
                };
                let r = row(y, y_min, y_max, opts.height);
                grid[r][c] = marker;
            }
        }
        // Single-point series still get their marker.
        if series.points.len() == 1 {
            let (x, y) = series.points[0];
            grid[row(y, y_min, y_max, opts.height)][col(xform(x), x_min, x_max, opts.width)] =
                marker;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{}\n", figure.title));
    out.push_str(&format!("{:>8.1} ┤", y_max));
    out.push_str(&grid[0].iter().collect::<String>());
    out.push('\n');
    for r in grid.iter().take(opts.height - 1).skip(1) {
        out.push_str("         │");
        out.push_str(&r.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!("{:>8.1} ┤", y_min));
    out.push_str(&grid[opts.height - 1].iter().collect::<String>());
    out.push('\n');
    out.push_str("         └");
    out.push_str(&"─".repeat(opts.width));
    out.push('\n');
    let x_lo = if opts.log_x { 10f64.powf(x_min) } else { x_min };
    let x_hi = if opts.log_x { 10f64.powf(x_max) } else { x_max };
    out.push_str(&format!(
        "          {:<width$.3}{:>8.3}\n",
        x_lo,
        x_hi,
        width = opts.width.saturating_sub(6)
    ));
    out.push_str(&format!(
        "          x: {} — y: {}\n",
        figure.x_label, figure.y_label
    ));
    for (si, series) in figure.all_series().iter().enumerate() {
        out.push_str(&format!(
            "          {} {}\n",
            MARKERS[si % MARKERS.len()],
            series.name
        ));
    }
    out
}

fn col(x: f64, min: f64, max: f64, width: usize) -> usize {
    let frac = ((x - min) / (max - min)).clamp(0.0, 1.0);
    ((frac * (width - 1) as f64).round() as usize).min(width - 1)
}

fn row(y: f64, min: f64, max: f64, height: usize) -> usize {
    // Row 0 is the top (y_max).
    let frac = ((y - min) / (max - min)).clamp(0.0, 1.0);
    let r = ((1.0 - frac) * (height - 1) as f64).round() as usize;
    r.min(height - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure::Series;

    fn demo() -> Figure {
        let mut f = Figure::new("T", "x", "y");
        f.push(Series::new(
            "down",
            vec![(0.125, 80.0), (1.0, 40.0), (8.0, 30.0)],
        ));
        f.push(Series::new("flat", vec![(0.125, 50.0), (8.0, 50.0)]));
        f
    }

    #[test]
    fn plot_contains_axes_legend_and_markers() {
        let s = render_plot(&demo(), PlotOptions::default());
        assert!(s.contains('┤'));
        assert!(s.contains('└'));
        assert!(s.contains("* down"));
        assert!(s.contains("o flat"));
        assert!(s.contains("x: x — y: y"));
        assert!(s.contains('*') && s.contains('o'));
    }

    #[test]
    fn log_x_spreads_small_values() {
        let lin = render_plot(
            &demo(),
            PlotOptions {
                log_x: false,
                ..PlotOptions::default()
            },
        );
        let log = render_plot(
            &demo(),
            PlotOptions {
                log_x: true,
                ..PlotOptions::default()
            },
        );
        // Both render; the curves differ in shape.
        assert_ne!(lin, log);
    }

    #[test]
    fn empty_figure_renders_nothing() {
        let f = Figure::new("E", "x", "y");
        assert_eq!(render_plot(&f, PlotOptions::default()), "");
    }

    #[test]
    fn flat_series_is_handled() {
        let mut f = Figure::new("F", "x", "y");
        f.push(Series::new("c", vec![(1.0, 5.0), (2.0, 5.0)]));
        let s = render_plot(&f, PlotOptions::default());
        assert!(s.contains('*'));
    }

    #[test]
    fn single_point_series() {
        let mut f = Figure::new("P", "x", "y");
        f.push(Series::new("dot", vec![(3.0, 7.0)]));
        let s = render_plot(&f, PlotOptions::default());
        assert!(s.contains('*'));
    }
}
