//! Simple fixed-column tables with ASCII and CSV rendering.

use std::fmt;

/// One table cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Free text.
    Text(String),
    /// An integer count.
    Int(i64),
    /// A floating value with a display precision.
    Float {
        /// The value.
        value: f64,
        /// Decimal places to print.
        precision: u8,
    },
    /// A percentage (printed with one decimal and a `%`).
    Pct(f64),
    /// Not applicable (the paper prints `NA` for /swap1's fsync column).
    Na,
}

impl Cell {
    /// Convenience float with one decimal.
    pub fn f1(value: f64) -> Cell {
        Cell::Float {
            value,
            precision: 1,
        }
    }

    /// Convenience float with two decimals.
    pub fn f2(value: f64) -> Cell {
        Cell::Float {
            value,
            precision: 2,
        }
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Text(s) => f.write_str(s),
            Cell::Int(v) => write!(f, "{v}"),
            Cell::Float { value, precision } => write!(f, "{value:.*}", *precision as usize),
            Cell::Pct(v) => write!(f, "{v:.1}%"),
            Cell::Na => f.write_str("NA"),
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Cell {
        Cell::Text(s.to_string())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Cell {
        Cell::Text(s)
    }
}

impl From<i64> for Cell {
    fn from(v: i64) -> Cell {
        Cell::Int(v)
    }
}

impl From<usize> for Cell {
    fn from(v: usize) -> Cell {
        Cell::Int(v as i64)
    }
}

/// A titled table with fixed columns.
///
/// # Examples
///
/// ```
/// use nvfs_report::table::{Cell, Table};
///
/// let mut t = Table::new("Demo", &["fs", "segments"]);
/// t.push_row(vec![Cell::from("/user6"), Cell::from(42usize)]);
/// let text = t.render();
/// assert!(text.contains("/user6"));
/// assert!(t.to_csv().contains("fs,segments"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    pub fn new(title: &str, columns: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the column count.
    pub fn push_row(&mut self, row: Vec<Cell>) {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// The rows (for assertions in tests).
    pub fn rows(&self) -> &[Vec<Cell>] {
        &self.rows
    }

    /// Renders an aligned ASCII table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Cell::to_string).collect())
            .collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(header.join("  ").len()));
        out.push('\n');
        for row in &rendered {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Renders comma-separated values (header row first).
    pub fn to_csv(&self) -> String {
        let mut out = self.columns.join(",");
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(Cell::to_string).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_render() {
        assert_eq!(Cell::from("x").to_string(), "x");
        assert_eq!(Cell::from(5usize).to_string(), "5");
        assert_eq!(Cell::f1(1.25).to_string(), "1.2");
        assert_eq!(Cell::f2(1.256).to_string(), "1.26");
        assert_eq!(Cell::Pct(12.34).to_string(), "12.3%");
        assert_eq!(Cell::Na.to_string(), "NA");
    }

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("T", &["name", "n"]);
        t.push_row(vec![Cell::from("abcdef"), Cell::from(1usize)]);
        t.push_row(vec![Cell::from("x"), Cell::from(1000usize)]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "T");
        assert!(lines[3].contains("abcdef"));
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn csv_round_trip_structure() {
        let mut t = Table::new("T", &["a", "b"]);
        t.push_row(vec![Cell::from(1usize), Cell::Pct(50.0)]);
        assert_eq!(t.to_csv(), "a,b\n1,50.0%\n");
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_rejected() {
        let mut t = Table::new("T", &["a", "b"]);
        t.push_row(vec![Cell::from(1usize)]);
    }
}
