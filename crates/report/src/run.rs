//! Panic-to-diagnostic wrapper shared by every CLI verification command.
//!
//! The simulation crates assert their invariants with panics (bad plan
//! knobs, impossible schedules), but a CLI run on user input should print
//! a one-line diagnostic and exit nonzero, never dump a backtrace. Each
//! `verify-*` command used to carry its own copy of this wrapper; they
//! all share [`catching`] now.

/// Runs `f`, converting a library panic into an `Err` so the caller can
/// print a one-line `label failed: reason` diagnostic and exit nonzero
/// instead of dumping a backtrace on bad user input.
///
/// # Examples
///
/// ```
/// use nvfs_report::run::catching;
///
/// let ok: Result<u32, String> = catching("demo", || Ok(7));
/// assert_eq!(ok, Ok(7));
///
/// let boom: Result<(), String> = catching("demo", || panic!("bad knob"));
/// assert_eq!(boom, Err("demo failed: bad knob".to_string()));
/// ```
pub fn catching<T>(label: &str, f: impl FnOnce() -> Result<T, String>) -> Result<T, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).unwrap_or_else(|payload| {
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("unknown panic");
        Err(format!("{label} failed: {msg}"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_through_ok_and_err() {
        assert_eq!(catching("t", || Ok(41)), Ok(41));
        assert_eq!(
            catching("t", || Err::<(), _>("plain error".to_string())),
            Err("plain error".to_string())
        );
    }

    #[test]
    fn converts_str_and_string_panics() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep test output clean
        let s: Result<(), String> = catching("lbl", || panic!("static str"));
        let owned: Result<(), String> = catching("lbl", || panic!("{}", "owned".to_string()));
        std::panic::set_hook(hook);
        assert_eq!(s, Err("lbl failed: static str".to_string()));
        assert_eq!(owned, Err("lbl failed: owned".to_string()));
    }
}
