//! # nvfs-wal — the NVRAM write-ahead log
//!
//! The paper's server-side use of NVRAM is a non-volatile *segment write
//! buffer* (§4): dirty data is staged page-at-a-time and whole segments
//! leave for disk. The follow-on literature converged on the alternative
//! this crate models — a transparent NVM write-ahead log in front of the
//! file system (NVLog, arXiv 2408.02911), with the two designs framed as
//! *logging vs. paging* NVMM caches (arXiv 2305.02244).
//!
//! [`NvLog`] is an append-only region of NVRAM holding checksummed,
//! sequence-numbered records in the shared [`nvfs_types::framing`] format.
//! The commit protocol:
//!
//! 1. `fsync` encodes the file's dirty byte ranges into one record and
//!    appends it. The ack is returned as soon as the NVRAM copy finishes —
//!    a latency of [`append_latency`], *not* a disk write.
//! 2. Segments are written back lazily by a background drain; the log is
//!    truncated through a record's sequence number only once the segment
//!    write carrying its bytes has completed ([`NvLog::truncate_through`]).
//! 3. After a crash, [`NvLog::recover`] rolls the log forward: the valid
//!    record prefix is replayed and the first torn or checksum-invalid
//!    record — necessarily un-acked — truncates the tail.
//!
//! Observability: appends and truncations emit `wal.*` counters and
//! `wal_append` / `wal_truncate` events, all jobs-invariant.
//!
//! # Examples
//!
//! ```
//! use nvfs_types::{ByteRange, FileId, RangeSet, SimTime};
//! use nvfs_wal::NvLog;
//!
//! let mut log = NvLog::new(64 << 10);
//! let t = SimTime::from_micros(10);
//! let seq = log.append(t, FileId(3), &RangeSet::from_range(ByteRange::new(0, 100)));
//! assert_eq!(seq, 0);
//! assert_eq!(log.entries().len(), 1);
//! // The segment carrying record 0 hit the disk: the log lets it go.
//! log.truncate_through(t, 0);
//! assert!(log.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nvfs_types::framing::{decode_stream, encode_record, RECORD_HEADER_BYTES};
use nvfs_types::{ByteRange, FileId, RangeSet, SimDuration, SimTime};

/// NVRAM copy cost in nanoseconds per byte: a 100 ns Table 1 board access
/// moving one 4-byte word.
pub const NVRAM_NS_PER_BYTE: u64 = 25;

/// The simulated latency, in nanoseconds, of durably appending
/// `payload_bytes` of record payload (framing header included) into NVRAM.
pub fn append_latency_ns(payload_bytes: u64) -> u64 {
    (RECORD_HEADER_BYTES + payload_bytes) * NVRAM_NS_PER_BYTE
}

/// [`append_latency_ns`] as a (microsecond-resolution) [`SimDuration`].
pub fn append_latency(payload_bytes: u64) -> SimDuration {
    SimDuration::from_micros(append_latency_ns(payload_bytes) / 1000)
}

/// One acknowledged record in the log: the unit of the durability promise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalEntry {
    /// The record's sequence number.
    pub seq: u64,
    /// When the append was acknowledged.
    pub time: SimTime,
    /// The file the record covers.
    pub file: FileId,
    /// The byte ranges promised durable by this record.
    pub ranges: RangeSet,
}

impl WalEntry {
    /// Payload data bytes the record promises (excludes framing).
    pub fn data_bytes(&self) -> u64 {
        self.ranges.len_bytes()
    }
}

/// What [`NvLog::recover`] found when rolling the log forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalRecovery {
    /// Records that decoded intact and are ready to replay.
    pub replayed_records: u64,
    /// Promised data bytes across the replayed records.
    pub replayed_bytes: u64,
    /// Log bytes discarded because the tail record was torn or corrupt.
    pub truncated_bytes: u64,
}

/// The append-only NVRAM log.
///
/// `buf` models the NVRAM contents byte-for-byte in the shared framing
/// format; `entries` mirrors the acknowledged records for cheap policy
/// decisions (drain age, truncation offsets). A torn append writes bytes
/// without a mirror entry — exactly the state [`NvLog::recover`] must
/// repair.
#[derive(Debug, Clone)]
pub struct NvLog {
    buf: Vec<u8>,
    entries: Vec<WalEntry>,
    next_seq: u64,
    capacity: u64,
}

/// Bytes one record occupies in the log for `payload_bytes` of payload.
fn framed_bytes(payload_bytes: u64) -> u64 {
    RECORD_HEADER_BYTES + payload_bytes
}

/// Encodes a record payload: `[file u32 LE][n u32 LE][(start, end) u64 LE]*`.
fn encode_payload(file: FileId, ranges: &RangeSet) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 16 * ranges.fragment_count());
    out.extend_from_slice(&file.0.to_le_bytes());
    out.extend_from_slice(&(ranges.fragment_count() as u32).to_le_bytes());
    for r in ranges.iter() {
        out.extend_from_slice(&r.start.to_le_bytes());
        out.extend_from_slice(&r.end.to_le_bytes());
    }
    out
}

/// Decodes a record payload written by [`encode_payload`]. Returns `None`
/// on structural mismatch (cannot happen for checksum-valid records).
fn decode_payload(payload: &[u8]) -> Option<(FileId, RangeSet)> {
    if payload.len() < 8 {
        return None;
    }
    let file = FileId(u32::from_le_bytes(payload[0..4].try_into().ok()?));
    let n = u32::from_le_bytes(payload[4..8].try_into().ok()?) as usize;
    if payload.len() != 8 + 16 * n {
        return None;
    }
    let mut ranges = RangeSet::new();
    for i in 0..n {
        let at = 8 + 16 * i;
        let start = u64::from_le_bytes(payload[at..at + 8].try_into().ok()?);
        let end = u64::from_le_bytes(payload[at + 8..at + 16].try_into().ok()?);
        ranges.insert(ByteRange::new(start, end));
    }
    Some((file, ranges))
}

impl NvLog {
    /// An empty log over `capacity` bytes of NVRAM.
    pub fn new(capacity: u64) -> Self {
        NvLog {
            buf: Vec::new(),
            entries: Vec::new(),
            next_seq: 0,
            capacity,
        }
    }

    /// The NVRAM capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Logical bytes of NVRAM the log occupies: each record holds its
    /// file's promised data bytes plus the framing header. (The simulation
    /// frames range *descriptors* rather than payload data, so this is
    /// computed from the promised ranges, not from the descriptor stream.)
    pub fn used_bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| framed_bytes(e.data_bytes()))
            .sum()
    }

    /// Whether the log holds no bytes at all.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty() && self.entries.is_empty()
    }

    /// The acknowledged records still in the log, oldest first.
    pub fn entries(&self) -> &[WalEntry] {
        &self.entries
    }

    /// Whether appending a record for `ranges` would exceed capacity — the
    /// caller must drain and truncate first (a synchronous drain, the WAL
    /// analogue of the write buffer's `NvramFull` flush).
    pub fn would_overflow(&self, ranges: &RangeSet) -> bool {
        self.used_bytes() + framed_bytes(ranges.len_bytes()) > self.capacity
    }

    /// Durably appends one record and acknowledges it: from this moment
    /// every byte in `ranges` is promised to survive any crash. Returns the
    /// record's sequence number.
    pub fn append(&mut self, t: SimTime, file: FileId, ranges: &RangeSet) -> u64 {
        let seq = self.append_bytes(file, ranges);
        self.entries.push(WalEntry {
            seq,
            time: t,
            file,
            ranges: ranges.clone(),
        });
        nvfs_obs::counter_add("wal.appended", 1);
        nvfs_obs::counter_add("wal.append_bytes", ranges.len_bytes());
        nvfs_obs::event("wal_append", t.as_micros())
            .u64("seq", seq)
            .u64("file", file.0 as u64)
            .u64("bytes", ranges.len_bytes())
            .emit();
        seq
    }

    /// A crash interrupts the append after `fraction` of the framed record
    /// reached NVRAM. The fsync is never acknowledged — nothing is promised
    /// — and the torn bytes await [`NvLog::recover`].
    pub fn append_torn(&mut self, file: FileId, ranges: &RangeSet, fraction: f64) {
        let before = self.buf.len();
        self.append_bytes(file, ranges);
        let written = ((self.buf.len() - before) as f64 * fraction.clamp(0.0, 1.0)) as usize;
        self.buf.truncate(before + written);
        // The tear must actually tear: keep at least one byte missing so the
        // tail record can never pass its checksum.
        if self.buf.len() - before > 0 && written > 0 {
            self.buf.pop();
        }
    }

    fn append_bytes(&mut self, file: FileId, ranges: &RangeSet) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        encode_record(seq, &encode_payload(file, ranges), &mut self.buf);
        seq
    }

    /// Rolls the log forward after a crash: decodes the valid record
    /// prefix, truncates the torn or corrupt tail, and rebuilds the mirror
    /// so every surviving record is ready to replay (their append times are
    /// reset to `t`; replay happens now regardless of age).
    pub fn recover(&mut self, t: SimTime) -> WalRecovery {
        let decoded = decode_stream(&self.buf);
        let truncated = self.buf.len() - decoded.valid_bytes;
        self.buf.truncate(decoded.valid_bytes);
        self.entries = decoded
            .records
            .iter()
            .filter_map(|r| {
                let (file, ranges) = decode_payload(&r.payload)?;
                Some(WalEntry {
                    seq: r.seq,
                    time: t,
                    file,
                    ranges,
                })
            })
            .collect();
        self.next_seq = self.entries.last().map_or(self.next_seq, |e| e.seq + 1);
        let out = WalRecovery {
            replayed_records: self.entries.len() as u64,
            replayed_bytes: self.entries.iter().map(WalEntry::data_bytes).sum(),
            truncated_bytes: truncated as u64,
        };
        nvfs_obs::counter_add("wal.recoveries", 1);
        if out.truncated_bytes > 0 {
            nvfs_obs::counter_add("wal.recovered_torn_bytes", out.truncated_bytes);
        }
        out
    }

    /// Releases every record with sequence number `<= seq` — called only
    /// once the segment writes carrying those records' bytes have
    /// completed, which is the truncation invariant that makes the ack at
    /// append time safe.
    pub fn truncate_through(&mut self, t: SimTime, seq: u64) {
        let keep = self.entries.iter().position(|e| e.seq > seq);
        let dropped: Vec<WalEntry> = match keep {
            Some(i) => {
                let tail = self.entries.split_off(i);
                std::mem::replace(&mut self.entries, tail)
            }
            None => std::mem::take(&mut self.entries),
        };
        if dropped.is_empty() {
            return;
        }
        let bytes: u64 = dropped.iter().map(WalEntry::data_bytes).sum();
        self.rebuild_buf();
        nvfs_obs::counter_add("wal.truncated_records", dropped.len() as u64);
        nvfs_obs::counter_add("wal.truncated_bytes", bytes);
        nvfs_obs::event("wal_truncate", t.as_micros())
            .u64("through_seq", seq)
            .u64("records", dropped.len() as u64)
            .u64("bytes", bytes)
            .emit();
    }

    /// Drops `file`'s promised ranges from every record (the file was
    /// deleted; a later replay must not resurrect it). Records left with no
    /// ranges stay as sequence placeholders until truncated.
    pub fn kill_file(&mut self, file: FileId) {
        if self.entries.iter().all(|e| e.file != file) {
            return;
        }
        for e in &mut self.entries {
            if e.file == file {
                e.ranges.clear();
            }
        }
        self.rebuild_buf();
    }

    /// Re-encodes NVRAM from the mirror (after truncation or a delete),
    /// preserving each surviving record's sequence number.
    fn rebuild_buf(&mut self) {
        self.buf.clear();
        for e in &self.entries {
            encode_record(e.seq, &encode_payload(e.file, &e.ranges), &mut self.buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(start: u64, end: u64) -> RangeSet {
        RangeSet::from_range(ByteRange::new(start, end))
    }

    #[test]
    fn append_truncate_round_trip() {
        let mut log = NvLog::new(1 << 16);
        let t = SimTime::from_micros(5);
        assert_eq!(log.append(t, FileId(1), &rs(0, 100)), 0);
        assert_eq!(log.append(t, FileId(2), &rs(0, 50)), 1);
        assert_eq!(log.entries().len(), 2);
        log.truncate_through(t, 0);
        assert_eq!(log.entries().len(), 1);
        assert_eq!(log.entries()[0].seq, 1);
        log.truncate_through(t, 1);
        assert!(log.is_empty());
        // Sequence numbers keep climbing across truncation.
        assert_eq!(log.append(t, FileId(1), &rs(0, 10)), 2);
    }

    #[test]
    fn recover_replays_acked_and_truncates_torn() {
        let mut log = NvLog::new(1 << 16);
        let t = SimTime::from_micros(9);
        log.append(t, FileId(1), &rs(0, 4096));
        log.append_torn(FileId(2), &rs(0, 4096), 0.5);
        let out = log.recover(SimTime::from_micros(20));
        assert_eq!(out.replayed_records, 1);
        assert_eq!(out.replayed_bytes, 4096);
        assert!(out.truncated_bytes > 0);
        assert_eq!(log.entries().len(), 1);
        assert_eq!(log.entries()[0].file, FileId(1));
        assert_eq!(log.used_bytes(), framed_bytes(4096));
    }

    #[test]
    fn zero_fraction_tear_still_decodes_to_nothing_new() {
        let mut log = NvLog::new(1 << 16);
        log.append_torn(FileId(7), &rs(0, 64), 0.0);
        let out = log.recover(SimTime::ZERO);
        assert_eq!(out.replayed_records, 0);
        assert!(log.is_empty());
    }

    #[test]
    fn kill_file_empties_only_that_files_promises() {
        let mut log = NvLog::new(1 << 16);
        let t = SimTime::ZERO;
        log.append(t, FileId(1), &rs(0, 100));
        log.append(t, FileId(2), &rs(0, 200));
        log.kill_file(FileId(1));
        assert_eq!(log.entries()[0].data_bytes(), 0);
        assert_eq!(log.entries()[1].data_bytes(), 200);
        // The NVRAM image reflects the kill: recovery resurrects nothing.
        let out = log.recover(t);
        assert_eq!(out.replayed_bytes, 200);
    }

    #[test]
    fn overflow_check_accounts_for_framing() {
        let ranges = rs(0, 100);
        let mut log = NvLog::new(framed_bytes(100));
        assert!(!log.would_overflow(&ranges));
        log.append(SimTime::ZERO, FileId(1), &ranges);
        assert_eq!(log.used_bytes(), framed_bytes(100));
        assert!(log.would_overflow(&ranges));
    }

    #[test]
    fn append_latency_scales_with_bytes() {
        assert_eq!(
            append_latency(4096),
            SimDuration::from_micros((RECORD_HEADER_BYTES + 4096) * NVRAM_NS_PER_BYTE / 1000)
        );
        assert!(append_latency(0) < append_latency(1 << 20));
    }
}
