//! Well-formedness validation for op streams.
//!
//! The simulators are tolerant of odd inputs (the paper's own traces had
//! truncation artifacts), but a *generator* should produce clean streams.
//! [`validate`] checks the session discipline the paper's traces follow and
//! returns every violation, so tests can assert a stream is well-formed and
//! tools can lint imported traces.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use nvfs_types::{ClientId, FileId, SimTime};

use crate::op::{OpKind, OpStream};

/// One violation found in a stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Index of the offending op.
    pub index: usize,
    /// When it happened.
    pub time: SimTime,
    /// What is wrong.
    pub kind: ViolationKind,
}

/// The kinds of violation [`validate`] reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// Ops are not sorted by time.
    TimeRegression,
    /// A read or write referenced a file the client has not opened.
    AccessWithoutOpen {
        /// The client at fault.
        client: ClientId,
        /// The file accessed.
        file: FileId,
    },
    /// A close without a matching open.
    CloseWithoutOpen {
        /// The client at fault.
        client: ClientId,
        /// The file closed.
        file: FileId,
    },
    /// An operation referenced a deleted file before it was recreated.
    UseAfterDelete {
        /// The file at fault.
        file: FileId,
    },
    /// A file was still open when the stream ended.
    LeakedOpen {
        /// The client holding the file open.
        client: ClientId,
        /// The file left open.
        file: FileId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op {} at {}: {:?}", self.index, self.time, self.kind)
    }
}

/// Validates session discipline over `ops`, returning every violation.
///
/// Reads/writes must occur inside an open session of the same client;
/// closes must match opens; deleted files must be re-opened (recreated)
/// before reuse; opens should be closed by the end of the stream.
///
/// # Examples
///
/// ```
/// use nvfs_trace::op::OpStream;
/// use nvfs_trace::validate::validate;
///
/// assert!(validate(&OpStream::new()).is_empty());
/// ```
pub fn validate(ops: &OpStream) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut open: BTreeMap<(ClientId, FileId), u32> = BTreeMap::new();
    let mut deleted: BTreeSet<FileId> = BTreeSet::new();
    let mut last_time = SimTime::ZERO;

    for (index, op) in ops.iter().enumerate() {
        let mut report = |kind: ViolationKind| {
            violations.push(Violation {
                index,
                time: op.time,
                kind,
            });
        };
        if op.time < last_time {
            report(ViolationKind::TimeRegression);
        }
        last_time = last_time.max(op.time);

        match &op.kind {
            OpKind::Open { file, .. } => {
                deleted.remove(file);
                *open.entry((op.client, *file)).or_insert(0) += 1;
            }
            OpKind::Close { file } => match open.get_mut(&(op.client, *file)) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    if *n == 0 {
                        open.remove(&(op.client, *file));
                    }
                }
                _ => report(ViolationKind::CloseWithoutOpen {
                    client: op.client,
                    file: *file,
                }),
            },
            OpKind::Read { file, .. } | OpKind::Write { file, .. } => {
                if deleted.contains(file) {
                    report(ViolationKind::UseAfterDelete { file: *file });
                } else if !open.contains_key(&(op.client, *file)) {
                    report(ViolationKind::AccessWithoutOpen {
                        client: op.client,
                        file: *file,
                    });
                }
            }
            OpKind::Truncate { file, .. } | OpKind::Fsync { file } => {
                if deleted.contains(file) {
                    report(ViolationKind::UseAfterDelete { file: *file });
                }
            }
            OpKind::Delete { file } => {
                deleted.insert(*file);
                // A delete implicitly ends every session on the file.
                let holders: Vec<(ClientId, FileId)> =
                    open.keys().filter(|(_, f)| f == file).copied().collect();
                for k in holders {
                    open.remove(&k);
                }
            }
            OpKind::Migrate { .. } => {}
        }
    }
    for ((client, file), _) in open {
        violations.push(Violation {
            index: ops.len(),
            time: last_time,
            kind: ViolationKind::LeakedOpen { client, file },
        });
    }
    violations
}

/// Violations ignoring leaked opens (a day-long trace legitimately ends
/// with editors still running, as the paper's traces did).
pub fn validate_ignoring_leaks(ops: &OpStream) -> Vec<Violation> {
    validate(ops)
        .into_iter()
        .filter(|v| !matches!(v.kind, ViolationKind::LeakedOpen { .. }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::OpenMode;
    use crate::op::Op;
    use nvfs_types::ByteRange;

    fn op(t: u64, client: u32, kind: OpKind) -> Op {
        Op {
            time: SimTime::from_secs(t),
            client: ClientId(client),
            kind,
        }
    }

    #[test]
    fn clean_session_passes() {
        let ops: OpStream = vec![
            op(
                0,
                0,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            op(
                1,
                0,
                OpKind::Write {
                    file: FileId(0),
                    range: ByteRange::new(0, 10),
                },
            ),
            op(2, 0, OpKind::Close { file: FileId(0) }),
        ]
        .into_iter()
        .collect();
        assert!(validate(&ops).is_empty());
    }

    #[test]
    fn access_without_open_is_flagged() {
        let ops: OpStream = vec![op(
            0,
            1,
            OpKind::Read {
                file: FileId(5),
                range: ByteRange::new(0, 10),
            },
        )]
        .into_iter()
        .collect();
        let v = validate(&ops);
        assert_eq!(v.len(), 1);
        assert!(matches!(
            v[0].kind,
            ViolationKind::AccessWithoutOpen {
                client: ClientId(1),
                file: FileId(5)
            }
        ));
    }

    #[test]
    fn use_after_delete_is_flagged_until_recreate() {
        let ops: OpStream = vec![
            op(
                0,
                0,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            op(1, 0, OpKind::Delete { file: FileId(0) }),
            op(2, 0, OpKind::Fsync { file: FileId(0) }),
            op(
                3,
                0,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            op(
                4,
                0,
                OpKind::Write {
                    file: FileId(0),
                    range: ByteRange::new(0, 10),
                },
            ),
            op(5, 0, OpKind::Close { file: FileId(0) }),
        ]
        .into_iter()
        .collect();
        let v = validate(&ops);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(matches!(
            v[0].kind,
            ViolationKind::UseAfterDelete { file: FileId(0) }
        ));
    }

    #[test]
    fn close_without_open_and_leaks() {
        let ops: OpStream = vec![
            op(0, 0, OpKind::Close { file: FileId(0) }),
            op(
                1,
                0,
                OpKind::Open {
                    file: FileId(1),
                    mode: OpenMode::Read,
                },
            ),
        ]
        .into_iter()
        .collect();
        let v = validate(&ops);
        assert_eq!(v.len(), 2);
        assert!(matches!(v[0].kind, ViolationKind::CloseWithoutOpen { .. }));
        assert!(matches!(v[1].kind, ViolationKind::LeakedOpen { .. }));
        assert_eq!(validate_ignoring_leaks(&ops).len(), 1);
    }

    #[test]
    fn synthetic_traces_are_well_formed() {
        use crate::synth::{SpriteTraceSet, TraceSetConfig};
        let set = SpriteTraceSet::generate(&TraceSetConfig::tiny());
        for trace in set.traces() {
            let v = validate_ignoring_leaks(trace.ops());
            // The generator interleaves activities, so a deleted autosave
            // file may have in-flight events; anything else is a bug.
            for violation in &v {
                assert!(
                    matches!(violation.kind, ViolationKind::UseAfterDelete { .. }),
                    "trace {}: {violation}",
                    trace.number()
                );
            }
        }
    }
}
