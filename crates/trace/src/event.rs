//! Raw trace events.
//!
//! These mirror the vocabulary of the Sprite traces used by the paper
//! (§2.2): the traces "record key file system operations such as file opens,
//! closes, and seeks", plus truncation/deletion events, consistency-relevant
//! opens, explicit `fsync` calls, and process migrations. Read and write
//! traffic is recorded as transfer lengths at the current file offset; the
//! conversion pass ([`crate::convert`]) deduces the byte ranges, exactly as
//! the paper's first simulation pass did.

use nvfs_types::{ClientId, FileId, ProcessId, SimTime};

/// Access mode requested by an [`EventKind::Open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpenMode {
    /// Read-only open.
    Read,
    /// Write-only open (e.g. creating a new file).
    Write,
    /// Open for both reading and writing.
    ReadWrite,
}

impl OpenMode {
    /// Whether this mode can dirty data.
    pub const fn is_write(self) -> bool {
        matches!(self, OpenMode::Write | OpenMode::ReadWrite)
    }
}

/// One record of a raw trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the event occurred.
    pub time: SimTime,
    /// The client workstation that issued it.
    pub client: ClientId,
    /// The process that issued it (used for migration accounting).
    pub pid: ProcessId,
    /// What happened.
    pub kind: EventKind,
}

/// The kind of a [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A file was opened; the file offset resets to zero.
    Open {
        /// File being opened.
        file: FileId,
        /// Requested access mode.
        mode: OpenMode,
    },
    /// A file was closed by this client/process.
    Close {
        /// File being closed.
        file: FileId,
    },
    /// The file offset was repositioned.
    Seek {
        /// File whose offset moves.
        file: FileId,
        /// New absolute offset.
        offset: u64,
    },
    /// `len` bytes were read at the current offset (offset advances).
    Read {
        /// File being read.
        file: FileId,
        /// Transfer length in bytes.
        len: u64,
    },
    /// `len` bytes were written at the current offset (offset advances).
    Write {
        /// File being written.
        file: FileId,
        /// Transfer length in bytes.
        len: u64,
    },
    /// The file was truncated to `new_len` bytes.
    Truncate {
        /// File being truncated.
        file: FileId,
        /// New file length.
        new_len: u64,
    },
    /// The file was deleted.
    Delete {
        /// File being deleted.
        file: FileId,
    },
    /// The application forced the file's dirty data to stable storage.
    Fsync {
        /// File being fsync'd.
        file: FileId,
    },
    /// The process migrated to another client, flushing its dirty data
    /// (Sprite flushes a migrating process's modified file data to the
    /// server so the destination sees it).
    Migrate {
        /// Destination workstation.
        to: ClientId,
    },
}

impl TraceEvent {
    /// The file this event refers to, if any.
    pub fn file(&self) -> Option<FileId> {
        match self.kind {
            EventKind::Open { file, .. }
            | EventKind::Close { file }
            | EventKind::Seek { file, .. }
            | EventKind::Read { file, .. }
            | EventKind::Write { file, .. }
            | EventKind::Truncate { file, .. }
            | EventKind::Delete { file }
            | EventKind::Fsync { file } => Some(file),
            EventKind::Migrate { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_mode_write_detection() {
        assert!(!OpenMode::Read.is_write());
        assert!(OpenMode::Write.is_write());
        assert!(OpenMode::ReadWrite.is_write());
    }

    #[test]
    fn event_file_extraction() {
        let e = TraceEvent {
            time: SimTime::ZERO,
            client: ClientId(0),
            pid: ProcessId(0),
            kind: EventKind::Read {
                file: FileId(3),
                len: 100,
            },
        };
        assert_eq!(e.file(), Some(FileId(3)));
        let m = TraceEvent {
            kind: EventKind::Migrate { to: ClientId(1) },
            ..e
        };
        assert_eq!(m.file(), None);
    }
}
