//! Trace events, canonical op streams, and synthetic Sprite workloads.
//!
//! The paper's simulations are trace-driven (§2.2): raw Sprite trace
//! records are first lowered into "read, write, delete, flush, and
//! invalidate operations on ranges of bytes", which the cache simulator
//! then replays. This crate provides all three layers:
//!
//! * [`event`] — raw trace records (opens, closes, seeks, transfers,
//!   truncations, deletions, fsyncs, migrations);
//! * [`convert`] — the lowering pass that replays file offsets to produce
//!   explicit byte ranges;
//! * [`op`] — the canonical, time-ordered [`op::OpStream`] consumed by the
//!   simulators;
//! * [`synth`] — deterministic synthetic workloads standing in for the
//!   unavailable Sprite traces (see `DESIGN.md` for the substitution
//!   rationale);
//! * [`stats`] — summary statistics;
//! * [`validate`] — well-formedness checks on op streams;
//! * [`serialize`] — a line-oriented text format for saving and replaying
//!   op streams.
//!
//! # Examples
//!
//! ```
//! use nvfs_trace::stats::TraceStats;
//! use nvfs_trace::synth::{SpriteTraceSet, TraceSetConfig};
//!
//! let set = SpriteTraceSet::generate(&TraceSetConfig::tiny());
//! let stats = TraceStats::for_stream(set.trace(0).ops());
//! assert!(stats.write_bytes > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convert;
pub mod event;
pub mod op;
pub mod serialize;
pub mod stats;
pub mod synth;
pub mod validate;

pub use event::{EventKind, OpenMode, TraceEvent};
pub use op::{Op, OpKind, OpStream};
