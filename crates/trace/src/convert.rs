//! Lowering raw trace events into canonical ops.
//!
//! This is the paper's first simulation pass (§2.2): the raw Sprite traces
//! record opens, closes and seeks with the current file offset, "making it
//! possible to deduce the order and amount of read and write traffic to
//! files". [`lower`] replays offsets to turn length-only transfers into
//! explicit byte ranges, and expands process migrations into the list of
//! files whose dirty data must be flushed.

use std::collections::{BTreeMap, BTreeSet};

use nvfs_types::{ByteRange, ClientId, FileId, ProcessId};

use crate::event::{EventKind, TraceEvent};
use crate::op::{Op, OpKind, OpStream};

/// Statistics about a lowering run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LowerStats {
    /// Events consumed.
    pub events: usize,
    /// Ops produced.
    pub ops: usize,
    /// Transfers that referenced a file with no preceding open (tolerated:
    /// the file is treated as implicitly opened at offset zero).
    pub implicit_opens: usize,
}

/// Per-(client, file) offset cursor.
#[derive(Debug, Default)]
struct Cursor {
    offset: u64,
}

/// Lowers a time-ordered slice of raw events into an [`OpStream`].
///
/// Reads and writes are converted from `(current offset, length)` form into
/// explicit [`ByteRange`]s. `Migrate` events are expanded with the set of
/// files the migrating process has written on the source client since its
/// last migration.
///
/// Returns the stream and statistics about tolerated irregularities.
///
/// # Examples
///
/// ```
/// use nvfs_trace::convert::lower;
/// use nvfs_trace::event::{EventKind, OpenMode, TraceEvent};
/// use nvfs_types::{ClientId, FileId, ProcessId, SimTime};
///
/// let events = vec![
///     TraceEvent {
///         time: SimTime::ZERO,
///         client: ClientId(0),
///         pid: ProcessId(0),
///         kind: EventKind::Open { file: FileId(0), mode: OpenMode::Write },
///     },
///     TraceEvent {
///         time: SimTime::from_secs(1),
///         client: ClientId(0),
///         pid: ProcessId(0),
///         kind: EventKind::Write { file: FileId(0), len: 100 },
///     },
/// ];
/// let (ops, stats) = lower(&events);
/// assert_eq!(stats.ops, 2);
/// assert_eq!(ops.app_write_bytes(), 100);
/// ```
pub fn lower(events: &[TraceEvent]) -> (OpStream, LowerStats) {
    let mut stats = LowerStats {
        events: events.len(),
        ..LowerStats::default()
    };
    let mut out = OpStream::new();
    let mut cursors: BTreeMap<(ClientId, FileId), Cursor> = BTreeMap::new();
    let mut written_by: BTreeMap<(ClientId, ProcessId), BTreeSet<FileId>> = BTreeMap::new();

    for ev in events {
        match ev.kind {
            EventKind::Open { file, mode } => {
                cursors.insert((ev.client, file), Cursor::default());
                out.push(Op {
                    time: ev.time,
                    client: ev.client,
                    kind: OpKind::Open { file, mode },
                });
            }
            EventKind::Close { file } => {
                cursors.remove(&(ev.client, file));
                out.push(Op {
                    time: ev.time,
                    client: ev.client,
                    kind: OpKind::Close { file },
                });
            }
            EventKind::Seek { file, offset } => {
                let cursor = cursors.entry((ev.client, file)).or_insert_with(|| {
                    stats.implicit_opens += 1;
                    Cursor::default()
                });
                cursor.offset = offset;
            }
            EventKind::Read { file, len } => {
                let range = advance(&mut cursors, &mut stats, ev.client, file, len);
                out.push(Op {
                    time: ev.time,
                    client: ev.client,
                    kind: OpKind::Read { file, range },
                });
            }
            EventKind::Write { file, len } => {
                let range = advance(&mut cursors, &mut stats, ev.client, file, len);
                written_by
                    .entry((ev.client, ev.pid))
                    .or_default()
                    .insert(file);
                out.push(Op {
                    time: ev.time,
                    client: ev.client,
                    kind: OpKind::Write { file, range },
                });
            }
            EventKind::Truncate { file, new_len } => {
                if let Some(c) = cursors.get_mut(&(ev.client, file)) {
                    c.offset = c.offset.min(new_len);
                }
                out.push(Op {
                    time: ev.time,
                    client: ev.client,
                    kind: OpKind::Truncate { file, new_len },
                });
            }
            EventKind::Delete { file } => {
                cursors.remove(&(ev.client, file));
                out.push(Op {
                    time: ev.time,
                    client: ev.client,
                    kind: OpKind::Delete { file },
                });
            }
            EventKind::Fsync { file } => {
                out.push(Op {
                    time: ev.time,
                    client: ev.client,
                    kind: OpKind::Fsync { file },
                });
            }
            EventKind::Migrate { to } => {
                let files: Vec<FileId> = written_by
                    .remove(&(ev.client, ev.pid))
                    .map(|s| s.into_iter().collect())
                    .unwrap_or_default();
                out.push(Op {
                    time: ev.time,
                    client: ev.client,
                    kind: OpKind::Migrate {
                        pid: ev.pid,
                        to,
                        files,
                    },
                });
            }
        }
    }
    stats.ops = out.len();
    (out, stats)
}

fn advance(
    cursors: &mut BTreeMap<(ClientId, FileId), Cursor>,
    stats: &mut LowerStats,
    client: ClientId,
    file: FileId,
    len: u64,
) -> ByteRange {
    let cursor = cursors.entry((client, file)).or_insert_with(|| {
        stats.implicit_opens += 1;
        Cursor::default()
    });
    let range = ByteRange::at(cursor.offset, len);
    cursor.offset = range.end;
    range
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::OpenMode;
    use nvfs_types::SimTime;

    fn ev(t: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            time: SimTime::from_secs(t),
            client: ClientId(0),
            pid: ProcessId(0),
            kind,
        }
    }

    #[test]
    fn offsets_advance_sequentially() {
        let events = vec![
            ev(
                0,
                EventKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            ev(
                1,
                EventKind::Write {
                    file: FileId(0),
                    len: 100,
                },
            ),
            ev(
                2,
                EventKind::Write {
                    file: FileId(0),
                    len: 50,
                },
            ),
        ];
        let (ops, _) = lower(&events);
        let ranges: Vec<ByteRange> = ops
            .iter()
            .filter_map(|o| match o.kind {
                OpKind::Write { range, .. } => Some(range),
                _ => None,
            })
            .collect();
        assert_eq!(
            ranges,
            vec![ByteRange::new(0, 100), ByteRange::new(100, 150)]
        );
    }

    #[test]
    fn seek_repositions() {
        let events = vec![
            ev(
                0,
                EventKind::Open {
                    file: FileId(0),
                    mode: OpenMode::ReadWrite,
                },
            ),
            ev(
                1,
                EventKind::Seek {
                    file: FileId(0),
                    offset: 4096,
                },
            ),
            ev(
                2,
                EventKind::Read {
                    file: FileId(0),
                    len: 10,
                },
            ),
        ];
        let (ops, _) = lower(&events);
        let read = ops.iter().find_map(|o| match o.kind {
            OpKind::Read { range, .. } => Some(range),
            _ => None,
        });
        assert_eq!(read, Some(ByteRange::new(4096, 4106)));
    }

    #[test]
    fn reopen_resets_offset() {
        let events = vec![
            ev(
                0,
                EventKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            ev(
                1,
                EventKind::Write {
                    file: FileId(0),
                    len: 10,
                },
            ),
            ev(2, EventKind::Close { file: FileId(0) }),
            ev(
                3,
                EventKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            ev(
                4,
                EventKind::Write {
                    file: FileId(0),
                    len: 10,
                },
            ),
        ];
        let (ops, _) = lower(&events);
        let last_write = ops
            .iter()
            .filter_map(|o| match o.kind {
                OpKind::Write { range, .. } => Some(range),
                _ => None,
            })
            .next_back();
        assert_eq!(last_write, Some(ByteRange::new(0, 10)));
    }

    #[test]
    fn implicit_open_is_counted() {
        let events = vec![ev(
            0,
            EventKind::Write {
                file: FileId(9),
                len: 5,
            },
        )];
        let (_, stats) = lower(&events);
        assert_eq!(stats.implicit_opens, 1);
    }

    #[test]
    fn migrate_collects_written_files() {
        let events = vec![
            ev(
                0,
                EventKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            ev(
                1,
                EventKind::Write {
                    file: FileId(0),
                    len: 10,
                },
            ),
            ev(2, EventKind::Migrate { to: ClientId(1) }),
            ev(3, EventKind::Migrate { to: ClientId(2) }),
        ];
        let (ops, _) = lower(&events);
        let migrates: Vec<&Op> = ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Migrate { .. }))
            .collect();
        assert_eq!(migrates.len(), 2);
        match &migrates[0].kind {
            OpKind::Migrate { files, .. } => assert_eq!(files, &vec![FileId(0)]),
            _ => unreachable!(),
        }
        // Second migrate: the write set was consumed by the first.
        match &migrates[1].kind {
            OpKind::Migrate { files, .. } => assert!(files.is_empty()),
            _ => unreachable!(),
        }
    }

    #[test]
    fn truncate_clamps_cursor() {
        let events = vec![
            ev(
                0,
                EventKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            ev(
                1,
                EventKind::Write {
                    file: FileId(0),
                    len: 100,
                },
            ),
            ev(
                2,
                EventKind::Truncate {
                    file: FileId(0),
                    new_len: 20,
                },
            ),
            ev(
                3,
                EventKind::Write {
                    file: FileId(0),
                    len: 10,
                },
            ),
        ];
        let (ops, _) = lower(&events);
        let last_write = ops
            .iter()
            .filter_map(|o| match o.kind {
                OpKind::Write { range, .. } => Some(range),
                _ => None,
            })
            .next_back();
        assert_eq!(last_write, Some(ByteRange::new(20, 30)));
    }
}
