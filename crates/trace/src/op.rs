//! Canonical simulator operations.
//!
//! The paper's first pass "processed the trace data to convert it into read,
//! write, delete, flush, and invalidate operations on ranges of bytes"
//! (§2.2). [`Op`] is that canonical form: byte ranges are explicit, file
//! offsets are gone, and open/close markers remain so that the cache
//! consistency protocol (last-writer recall, concurrent write-sharing) can
//! be replayed by the cache simulator.

use nvfs_types::{ByteRange, ClientId, FileId, ProcessId, SimTime};

use crate::event::OpenMode;

/// A canonical operation with explicit byte ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Op {
    /// When the operation occurred.
    pub time: SimTime,
    /// The client workstation that issued it.
    pub client: ClientId,
    /// What happened.
    pub kind: OpKind,
}

/// The kind of an [`Op`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKind {
    /// A file was opened (drives the consistency protocol).
    Open {
        /// File being opened.
        file: FileId,
        /// Requested access mode.
        mode: OpenMode,
    },
    /// A file was closed.
    Close {
        /// File being closed.
        file: FileId,
    },
    /// Bytes were read.
    Read {
        /// File being read.
        file: FileId,
        /// Range of bytes read.
        range: ByteRange,
    },
    /// Bytes were written (become dirty in the writer's cache).
    Write {
        /// File being written.
        file: FileId,
        /// Range of bytes written.
        range: ByteRange,
    },
    /// Bytes at and beyond `new_len` died by truncation.
    Truncate {
        /// File being truncated.
        file: FileId,
        /// New file length.
        new_len: u64,
    },
    /// Every byte of the file died.
    Delete {
        /// File being deleted.
        file: FileId,
    },
    /// The application forced this file's dirty bytes to stable storage.
    Fsync {
        /// File being fsync'd.
        file: FileId,
    },
    /// A process migrated; the files it had dirtied on `client` must be
    /// flushed to the server before execution resumes on `to`.
    Migrate {
        /// The migrating process.
        pid: ProcessId,
        /// Destination workstation.
        to: ClientId,
        /// Files whose dirty data must be flushed.
        files: Vec<FileId>,
    },
}

impl Op {
    /// Number of application-payload bytes moved by this op (reads+writes).
    pub fn payload_bytes(&self) -> u64 {
        match &self.kind {
            OpKind::Read { range, .. } | OpKind::Write { range, .. } => range.len(),
            _ => 0,
        }
    }

    /// The file this op refers to, if exactly one.
    pub fn file(&self) -> Option<FileId> {
        match &self.kind {
            OpKind::Open { file, .. }
            | OpKind::Close { file }
            | OpKind::Read { file, .. }
            | OpKind::Write { file, .. }
            | OpKind::Truncate { file, .. }
            | OpKind::Delete { file }
            | OpKind::Fsync { file } => Some(*file),
            OpKind::Migrate { .. } => None,
        }
    }
}

/// An ordered stream of canonical operations.
///
/// Invariant: ops are sorted by time (ties keep insertion order).
///
/// # Examples
///
/// ```
/// use nvfs_trace::op::{Op, OpKind, OpStream};
/// use nvfs_types::{ByteRange, ClientId, FileId, SimTime};
///
/// let mut s = OpStream::new();
/// s.push(Op {
///     time: SimTime::from_secs(1),
///     client: ClientId(0),
///     kind: OpKind::Write { file: FileId(0), range: ByteRange::new(0, 4096) },
/// });
/// assert_eq!(s.len(), 1);
/// assert_eq!(s.app_write_bytes(), 4096);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpStream {
    ops: Vec<Op>,
}

impl OpStream {
    /// Creates an empty stream.
    pub fn new() -> Self {
        OpStream::default()
    }

    /// Appends an op.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `op.time` precedes the last op's time.
    pub fn push(&mut self, op: Op) {
        debug_assert!(
            self.ops.last().is_none_or(|last| last.time <= op.time),
            "ops must be pushed in time order"
        );
        self.ops.push(op);
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The ops in time order.
    pub fn iter(&self) -> std::slice::Iter<'_, Op> {
        self.ops.iter()
    }

    /// Borrows the ops as a slice.
    pub fn as_slice(&self) -> &[Op] {
        &self.ops
    }

    /// Total bytes written by applications in this stream.
    pub fn app_write_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|o| match &o.kind {
                OpKind::Write { range, .. } => range.len(),
                _ => 0,
            })
            .sum()
    }

    /// Total bytes read by applications in this stream.
    pub fn app_read_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|o| match &o.kind {
                OpKind::Read { range, .. } => range.len(),
                _ => 0,
            })
            .sum()
    }

    /// Time of the last op, or zero for an empty stream.
    pub fn end_time(&self) -> SimTime {
        self.ops.last().map_or(SimTime::ZERO, |o| o.time)
    }

    /// Merges several streams into one, preserving global time order.
    /// Ties are broken by input stream order, keeping merges deterministic.
    pub fn merge<I: IntoIterator<Item = OpStream>>(streams: I) -> OpStream {
        let mut all: Vec<(usize, Op)> = streams
            .into_iter()
            .enumerate()
            .flat_map(|(i, s)| s.ops.into_iter().map(move |op| (i, op)))
            .collect();
        all.sort_by_key(|(i, op)| (op.time, *i));
        OpStream {
            ops: all.into_iter().map(|(_, op)| op).collect(),
        }
    }
}

impl FromIterator<Op> for OpStream {
    fn from_iter<I: IntoIterator<Item = Op>>(iter: I) -> Self {
        let mut ops: Vec<Op> = iter.into_iter().collect();
        ops.sort_by_key(|o| o.time);
        OpStream { ops }
    }
}

impl<'a> IntoIterator for &'a OpStream {
    type Item = &'a Op;
    type IntoIter = std::slice::Iter<'a, Op>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

impl IntoIterator for OpStream {
    type Item = Op;
    type IntoIter = std::vec::IntoIter<Op>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvfs_types::ProcessId;

    fn op(t: u64, kind: OpKind) -> Op {
        Op {
            time: SimTime::from_secs(t),
            client: ClientId(0),
            kind,
        }
    }

    #[test]
    fn byte_accounting() {
        let s: OpStream = vec![
            op(
                0,
                OpKind::Write {
                    file: FileId(0),
                    range: ByteRange::new(0, 100),
                },
            ),
            op(
                1,
                OpKind::Read {
                    file: FileId(0),
                    range: ByteRange::new(0, 40),
                },
            ),
            op(
                2,
                OpKind::Write {
                    file: FileId(1),
                    range: ByteRange::new(0, 60),
                },
            ),
        ]
        .into_iter()
        .collect();
        assert_eq!(s.app_write_bytes(), 160);
        assert_eq!(s.app_read_bytes(), 40);
        assert_eq!(s.end_time(), SimTime::from_secs(2));
    }

    #[test]
    fn merge_keeps_time_order() {
        let a: OpStream = vec![
            op(
                0,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            op(5, OpKind::Close { file: FileId(0) }),
        ]
        .into_iter()
        .collect();
        let b: OpStream = vec![op(
            3,
            OpKind::Open {
                file: FileId(1),
                mode: OpenMode::Read,
            },
        )]
        .into_iter()
        .collect();
        let merged = OpStream::merge([a, b]);
        let times: Vec<u64> = merged.iter().map(|o| o.time.as_secs()).collect();
        assert_eq!(times, vec![0, 3, 5]);
    }

    #[test]
    fn op_metadata() {
        let w = op(
            0,
            OpKind::Write {
                file: FileId(2),
                range: ByteRange::new(0, 10),
            },
        );
        assert_eq!(w.payload_bytes(), 10);
        assert_eq!(w.file(), Some(FileId(2)));
        let m = op(
            0,
            OpKind::Migrate {
                pid: ProcessId(1),
                to: ClientId(1),
                files: vec![FileId(0)],
            },
        );
        assert_eq!(m.payload_bytes(), 0);
        assert_eq!(m.file(), None);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time order")]
    fn push_rejects_time_regression() {
        let mut s = OpStream::new();
        s.push(op(5, OpKind::Close { file: FileId(0) }));
        s.push(op(4, OpKind::Close { file: FileId(0) }));
    }
}
