//! Synthetic workload generation.
//!
//! The Sprite traces and server counters the paper measured are not
//! available, so this module synthesizes deterministic equivalents:
//!
//! * [`sprite`] — eight client-side day traces (see [`SpriteTraceSet`]);
//! * [`lfs_workload`] — server-side dirty-byte/fsync arrival streams for
//!   the eight LFS file systems of Table 3;
//! * [`dist`] — the small sampling helpers both generators share.

pub mod dist;
pub mod lfs_workload;
pub mod sprite;

pub use lfs_workload::{sprite_server_workloads, FsWorkload, ServerWorkloadConfig};
pub use sprite::{SpriteTraceSet, Trace, TraceSetConfig};
