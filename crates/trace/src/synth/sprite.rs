//! Synthetic Sprite trace set.
//!
//! The paper drives its client-cache simulations with eight 24-hour traces
//! of the Berkeley Sprite cluster. Those traces are not publicly available,
//! so this module synthesizes a workload with the same *structure*:
//!
//! * eight independent day-long traces over a cluster of diskless clients;
//! * traces 3 and 4 carry "two users performing long-running simulations on
//!   large files" (§2.2), giving them much higher throughput and byte
//!   lifetimes concentrated below half an hour;
//! * the remaining "typical" traces mix software development (compile
//!   bursts with short-lived temporaries), editing (periodic whole-file
//!   saves and autosaves), log appends, shared project files that a
//!   colleague opens later (driving consistency callbacks), rare concurrent
//!   write-sharing, persistent new data files, process migrations, and a
//!   Zipf-popularity read corpus.
//!
//! Each file class has an explicit lifetime law, so the published shapes —
//! 35–50% of written bytes dying within 30 seconds on typical days (Fig. 2),
//! ≈65% absorbed by an infinite non-volatile cache (Table 2), callbacks near
//! 17% — *emerge* from the class mix rather than being hard-coded.
//!
//! Generation is deterministic for a given [`TraceSetConfig`].

use std::collections::BTreeMap;

use nvfs_rng::{Rng, SeedableRng, StdRng};

use nvfs_types::{ClientId, FileId, ProcessId, SimDuration, SimTime};

use crate::convert::{lower, LowerStats};
use crate::event::{EventKind, OpenMode, TraceEvent};
use crate::op::OpStream;
use crate::synth::dist::{exponential, lognormal, Zipf};

/// Number of traces in a set, as in the paper.
pub const TRACE_COUNT: usize = 8;

/// Paper trace numbers (1-based) that carry the large-file simulation
/// workload.
pub const LARGE_FILE_TRACES: [usize; 2] = [3, 4];

/// Configuration for [`SpriteTraceSet::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSetConfig {
    /// Seed for the deterministic generator.
    pub seed: u64,
    /// Active client workstations per trace.
    pub clients: usize,
    /// Trace duration in hours (the paper's traces are 24-hour runs).
    pub hours: u64,
    /// Multiplier on file sizes (1.0 reproduces paper-scale volumes).
    pub scale: f64,
    /// Number of pre-existing files in the shared read corpus.
    pub corpus_files: usize,
    /// Multiplier on per-client activity rates (1.0 reproduces the
    /// paper's per-workstation op density). Values below 1.0 stretch the
    /// gaps between activities, thinning each client's day — the lever
    /// that makes very wide clusters ([`TraceSetConfig::mega`])
    /// tractable without changing any per-op shape.
    pub activity: f64,
}

impl TraceSetConfig {
    /// Paper-scale configuration: 12 active clients, 24-hour traces,
    /// full volume (typical traces ≈ 200–300 MB of application writes,
    /// traces 3 and 4 well over a gigabyte).
    pub fn paper() -> Self {
        TraceSetConfig {
            seed: 1992,
            clients: 12,
            hours: 24,
            scale: 1.0,
            corpus_files: 6000,
            activity: 1.0,
        }
    }

    /// Reduced configuration for integration tests and examples: fewer
    /// clients, shorter day, smaller files. Preserves the workload shape.
    pub fn small() -> Self {
        TraceSetConfig {
            seed: 1992,
            clients: 5,
            hours: 6,
            scale: 0.35,
            corpus_files: 2500,
            activity: 1.0,
        }
    }

    /// Minimal configuration for unit tests.
    pub fn tiny() -> Self {
        TraceSetConfig {
            seed: 1,
            clients: 3,
            hours: 2,
            scale: 0.2,
            corpus_files: 300,
            activity: 1.0,
        }
    }

    /// Cluster-scale configuration: 256 clients over a two-day window —
    /// 21× the paper's cluster width and twice its trace length. Activity
    /// is thinned to 1/50th (each workstation is mostly idle, as on a
    /// real large cluster) and file sizes reduced, keeping the op count
    /// tractable while the *width* — the dimension the sharded drive
    /// loop scales over — goes well beyond `paper`.
    ///
    /// Width is capped where every scorecard band still passes: the
    /// generators clamp inter-burst gaps (e.g. compile bursts fire at
    /// least every 4 simulated hours), so thinning saturates below
    /// `activity ≈ 0.02` — op mass stops shrinking while gap-coupled
    /// byte deaths stretch past the write-back horizon, which drags
    /// measured absorption out of the paper's Table 2 band. 1024-client
    /// variants at activity 0.002–0.005 were measured at 24–28 of 28
    /// scorecard checks and 2–3× the wall time of this sizing.
    pub fn mega() -> Self {
        TraceSetConfig {
            seed: 1992,
            clients: 256,
            hours: 48,
            scale: 0.25,
            corpus_files: 8000,
            activity: 0.02,
        }
    }

    /// Duration of each trace.
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_hours(self.hours)
    }
}

impl Default for TraceSetConfig {
    fn default() -> Self {
        TraceSetConfig::small()
    }
}

/// One synthetic 24-hour trace.
#[derive(Debug, Clone)]
pub struct Trace {
    number: usize,
    large_file_workload: bool,
    clients: usize,
    duration: SimDuration,
    events: Vec<TraceEvent>,
    ops: OpStream,
    lower_stats: LowerStats,
    manifest: BTreeMap<&'static str, u64>,
}

impl Trace {
    /// Paper trace number, 1 through 8.
    pub fn number(&self) -> usize {
        self.number
    }

    /// Whether this is one of the large-file simulation traces (3 or 4).
    pub fn is_large_file_workload(&self) -> bool {
        self.large_file_workload
    }

    /// Number of active clients.
    pub fn clients(&self) -> usize {
        self.clients
    }

    /// Trace duration.
    pub fn duration(&self) -> SimDuration {
        self.duration
    }

    /// The raw trace events, in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The canonical op stream (pass 1 of the paper's pipeline).
    pub fn ops(&self) -> &OpStream {
        &self.ops
    }

    /// Statistics from lowering events to ops.
    pub fn lower_stats(&self) -> LowerStats {
        self.lower_stats
    }

    /// Bytes written per file class — the generation manifest that makes
    /// the calibration auditable (which lifetime law produced which share
    /// of the workload).
    pub fn manifest(&self) -> &BTreeMap<&'static str, u64> {
        &self.manifest
    }

    /// Fraction of written bytes attributed to `class` (0 if absent).
    pub fn class_fraction(&self, class: &str) -> f64 {
        let total: u64 = self.manifest.values().sum();
        if total == 0 {
            return 0.0;
        }
        self.manifest.get(class).copied().unwrap_or(0) as f64 / total as f64
    }
}

/// The full set of eight traces.
#[derive(Debug, Clone)]
pub struct SpriteTraceSet {
    traces: Vec<Trace>,
}

impl SpriteTraceSet {
    /// Generates the eight traces deterministically from `cfg`.
    ///
    /// # Examples
    ///
    /// ```
    /// use nvfs_trace::synth::{SpriteTraceSet, TraceSetConfig};
    ///
    /// let set = SpriteTraceSet::generate(&TraceSetConfig::tiny());
    /// assert_eq!(set.traces().len(), 8);
    /// assert!(set.trace(2).is_large_file_workload()); // paper trace 3
    /// ```
    pub fn generate(cfg: &TraceSetConfig) -> Self {
        // Each trace derives its RNG from (cfg.seed, number) alone, so the
        // eight generations are independent and fan out across worker
        // threads; par_map joins in submission order, keeping the set
        // byte-identical to a sequential build at any job count.
        let traces = nvfs_par::par_map((1..=TRACE_COUNT).collect(), nvfs_par::jobs(), |number| {
            let large = LARGE_FILE_TRACES.contains(&number);
            TraceGen::new(cfg, number, large).generate()
        });
        SpriteTraceSet { traces }
    }

    /// All eight traces in paper order (index 0 is paper trace 1).
    pub fn traces(&self) -> &[Trace] {
        &self.traces
    }

    /// Trace by zero-based index (`0..8`). Paper trace *n* is `trace(n-1)`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 8`.
    pub fn trace(&self, idx: usize) -> &Trace {
        &self.traces[idx]
    }

    /// The "typical" traces: all except paper traces 3 and 4.
    pub fn typical(&self) -> impl Iterator<Item = &Trace> {
        self.traces.iter().filter(|t| !t.is_large_file_workload())
    }
}

/// Bytes per microsecond of simulated client write/read activity
/// (1 byte/µs ≈ 1 MB/s, a plausible late-80s workstation transfer rate).
const BYTES_PER_MICRO: u64 = 1;

/// Chunk size for emitted write transfers.
const WRITE_CHUNK: u64 = 32 * 1024;

struct TraceGen<'a> {
    cfg: &'a TraceSetConfig,
    number: usize,
    large: bool,
    rng: StdRng,
    events: Vec<TraceEvent>,
    next_file: u32,
    /// Current logical size of every file the generator knows about.
    sizes: BTreeMap<FileId, u64>,
    /// Read corpus: pre-existing files with fixed sizes.
    corpus: Vec<(FileId, u64)>,
    zipf_global: Zipf,
    end: SimTime,
    /// Per-trace activity intensity wobble (applied to activity gaps).
    intensity: f64,
    /// Bytes written per file class (the generation manifest).
    manifest: BTreeMap<&'static str, u64>,
}

/// Per-client process-id slots; each activity gets its own pid so process
/// migration can attribute written files.
#[derive(Clone, Copy)]
enum Slot {
    Compile = 1,
    Edit = 2,
    Log = 3,
    Share = 4,
    Reader = 5,
    Sim = 6,
    Output = 7,
    Concurrent = 8,
}

impl<'a> TraceGen<'a> {
    fn new(cfg: &'a TraceSetConfig, number: usize, large: bool) -> Self {
        let mut rng = StdRng::seed_from_u64(
            cfg.seed
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(number as u64),
        );
        let end = SimTime::ZERO + cfg.duration();
        // Pre-existing corpus files.
        let mut next_file = 0u32;
        let mut sizes = BTreeMap::new();
        let mut corpus = Vec::with_capacity(cfg.corpus_files);
        for _ in 0..cfg.corpus_files {
            let f = FileId(next_file);
            next_file += 1;
            let size = (lognormal(&mut rng, 32.0 * 1024.0, 1.1) as u64).clamp(2048, 1 << 20);
            sizes.insert(f, size);
            corpus.push((f, size));
        }
        let intensity = 0.8 + 0.45 * rng.gen::<f64>();
        TraceGen {
            cfg,
            number,
            large,
            rng,
            events: Vec::new(),
            next_file,
            sizes,
            corpus,
            zipf_global: Zipf::new(cfg.corpus_files.max(1), 0.9),
            end,
            intensity,
            manifest: BTreeMap::new(),
        }
    }

    /// Attributes `bytes` of writes to a file class in the manifest.
    fn attribute(&mut self, class: &'static str, bytes: u64) {
        *self.manifest.entry(class).or_insert(0) += bytes;
    }

    fn generate(mut self) -> Trace {
        let clients = self.cfg.clients;
        // Background intensity is reduced on the large-file traces (the
        // paper notes those days were dominated by the simulation users)
        // and scaled by the config's activity knob. At activity 1.0 the
        // product is exact, so the paper/small/tiny traces are untouched.
        let background = self.cfg.activity * if self.large { 0.6 } else { 1.0 };

        for c in 0..clients {
            let client = ClientId(c as u32);
            let sessions = self.work_sessions();
            for w in &sessions {
                self.gen_compile_bursts(client, *w, background);
                self.gen_edit_session(client, *w, background);
                self.gen_shared_handoffs(client, *w, background);
                self.gen_reads(client, *w, background);
                self.gen_persistent_outputs(client, *w, background);
            }
            self.gen_log_appends(client, background);
            self.gen_slow_churn(client, background);
        }
        if self.large {
            // Two simulation users dominate traces 3 and 4.
            for c in 0..2.min(clients) {
                self.gen_simulation_run(ClientId(c as u32));
            }
        }
        self.gen_concurrent_incidents(background);
        self.gen_migrations();

        // Stable sort preserves per-file event order for equal timestamps.
        self.events.sort_by_key(|e| e.time);
        let (ops, lower_stats) = lower(&self.events);
        Trace {
            number: self.number,
            large_file_workload: self.large,
            clients,
            duration: self.cfg.duration(),
            events: self.events,
            ops,
            lower_stats,
            manifest: self.manifest,
        }
    }

    /// Two working sessions per client, as fractions of the trace day.
    fn work_sessions(&mut self) -> Vec<(SimTime, SimTime)> {
        let t = self.end.as_micros() as f64;
        let mut sessions = Vec::new();
        for (lo, hi) in [(0.04, 0.40), (0.48, 0.88)] {
            let start = t * (lo + 0.05 * self.rng.gen::<f64>());
            let len = t * (hi - lo) * (0.6 + 0.4 * self.rng.gen::<f64>());
            let end = (start + len).min(t * hi);
            sessions.push((
                SimTime::from_micros(start as u64),
                SimTime::from_micros(end as u64),
            ));
        }
        sessions
    }

    fn pid(&self, client: ClientId, slot: Slot) -> ProcessId {
        ProcessId(client.0 * 16 + slot as u32)
    }

    fn new_file(&mut self) -> FileId {
        let f = FileId(self.next_file);
        self.next_file += 1;
        f
    }

    fn push(&mut self, time: SimTime, client: ClientId, pid: ProcessId, kind: EventKind) {
        self.events.push(TraceEvent {
            time,
            client,
            pid,
            kind,
        });
    }

    /// Emits open → (truncate) → sequential chunked writes → (fsync) → close,
    /// advancing `*t` past the transfer. Updates the tracked file size.
    #[allow(clippy::too_many_arguments)]
    fn write_file(
        &mut self,
        t: &mut SimTime,
        client: ClientId,
        pid: ProcessId,
        file: FileId,
        len: u64,
        truncate: bool,
        fsync: bool,
    ) {
        self.push(
            *t,
            client,
            pid,
            EventKind::Open {
                file,
                mode: OpenMode::Write,
            },
        );
        bump(t, 2_000);
        if truncate {
            self.push(*t, client, pid, EventKind::Truncate { file, new_len: 0 });
            self.sizes.insert(file, 0);
            bump(t, 1_000);
        }
        let mut off = 0;
        while off < len {
            let chunk = WRITE_CHUNK.min(len - off);
            self.push(*t, client, pid, EventKind::Write { file, len: chunk });
            bump(t, (chunk / BYTES_PER_MICRO).max(1_000));
            off += chunk;
        }
        let size = self.sizes.entry(file).or_insert(0);
        *size = (*size).max(len);
        if fsync {
            self.push(*t, client, pid, EventKind::Fsync { file });
            bump(t, 20_000);
        }
        self.push(*t, client, pid, EventKind::Close { file });
        bump(t, 1_000);
    }

    /// Emits open → (seek) → read → close for `range_len` bytes at `offset`.
    #[allow(clippy::too_many_arguments)]
    fn read_file(
        &mut self,
        t: &mut SimTime,
        client: ClientId,
        pid: ProcessId,
        file: FileId,
        offset: u64,
        range_len: u64,
    ) {
        self.push(
            *t,
            client,
            pid,
            EventKind::Open {
                file,
                mode: OpenMode::Read,
            },
        );
        bump(t, 2_000);
        if offset > 0 {
            self.push(*t, client, pid, EventKind::Seek { file, offset });
            bump(t, 500);
        }
        self.push(
            *t,
            client,
            pid,
            EventKind::Read {
                file,
                len: range_len,
            },
        );
        bump(t, (range_len / BYTES_PER_MICRO).max(1_000));
        self.push(*t, client, pid, EventKind::Close { file });
        bump(t, 1_000);
    }

    /// Appends `len` bytes to `file` (open, seek to end, write, close).
    fn append_file(
        &mut self,
        t: &mut SimTime,
        client: ClientId,
        pid: ProcessId,
        file: FileId,
        len: u64,
    ) {
        let offset = *self.sizes.get(&file).unwrap_or(&0);
        self.push(
            *t,
            client,
            pid,
            EventKind::Open {
                file,
                mode: OpenMode::Write,
            },
        );
        bump(t, 2_000);
        if offset > 0 {
            self.push(*t, client, pid, EventKind::Seek { file, offset });
            bump(t, 500);
        }
        self.push(*t, client, pid, EventKind::Write { file, len });
        bump(t, (len / BYTES_PER_MICRO).max(1_000));
        self.push(*t, client, pid, EventKind::Close { file });
        bump(t, 1_000);
        self.sizes.insert(file, offset + len);
    }

    /// Software-development bursts: short-lived compiler temporaries that
    /// are written, read back, and deleted within seconds to minutes, plus
    /// an output binary rewritten in place each burst.
    fn gen_compile_bursts(&mut self, client: ClientId, w: (SimTime, SimTime), intensity: f64) {
        let pid = self.pid(client, Slot::Compile);
        let out_pid = self.pid(client, Slot::Output);
        let output = self.new_file();
        let gap = 28.0 * 60.0 / (self.intensity * intensity);
        let mut t = w.0 + SimDuration::from_secs_f64(exponential(&mut self.rng, gap / 2.0));
        while t < w.1 {
            let n_temps = self.rng.gen_range(10..=20);
            let mut cursor = t;
            for _ in 0..n_temps {
                let f = self.new_file();
                let size =
                    scaled_size(&mut self.rng, self.cfg.scale, 40.0 * 1024.0, 0.9, 512 << 10);
                let mut wt = cursor;
                self.write_file(&mut wt, client, pid, f, size, false, false);
                self.attribute("compile-temp", size);
                // Read back shortly after (the "linker" pass)…
                let mut rt = wt + SimDuration::from_secs_f64(exponential(&mut self.rng, 4.0));
                self.read_file(&mut rt, client, pid, f, 0, size);
                // …and delete within seconds to a couple of minutes.
                let dt = rt
                    + SimDuration::from_secs_f64(exponential(&mut self.rng, 8.0).clamp(1.0, 70.0));
                self.push(dt, client, pid, EventKind::Delete { file: f });
                self.sizes.remove(&f);
                cursor = wt + SimDuration::from_millis(self.rng.gen_range(50..400));
            }
            // Output binary: overwritten in place at the next burst, so its
            // bytes die by overwrite after tens of minutes.
            let out_size = scaled_size(&mut self.rng, self.cfg.scale, 200.0 * 1024.0, 0.5, 2 << 20);
            let mut ot = cursor;
            self.write_file(&mut ot, client, out_pid, output, out_size, false, false);
            self.attribute("compile-output", out_size);
            t += SimDuration::from_secs_f64(
                exponential(&mut self.rng, gap).clamp(300.0, 4.0 * 3600.0),
            );
        }
    }

    /// Editing: periodic whole-file saves (truncate + rewrite) on a couple
    /// of documents, plus a rapidly-overwritten autosave file that is
    /// deleted when the session ends.
    fn gen_edit_session(&mut self, client: ClientId, w: (SimTime, SimTime), intensity: f64) {
        let pid = self.pid(client, Slot::Edit);
        let docs: Vec<(FileId, u64)> = (0..2)
            .map(|_| {
                let f = self.new_file();
                let size =
                    scaled_size(&mut self.rng, self.cfg.scale, 45.0 * 1024.0, 0.6, 512 << 10);
                (f, size)
            })
            .collect();
        let autosave = self.new_file();
        let autosave_size =
            scaled_size(&mut self.rng, self.cfg.scale, 12.0 * 1024.0, 0.4, 64 << 10);

        // Saves.
        let save_gap = 7.0 * 60.0 / (self.intensity * intensity);
        let mut t = w.0 + SimDuration::from_secs_f64(exponential(&mut self.rng, save_gap));
        while t < w.1 {
            let (f, base) = docs[self.rng.gen_range(0..docs.len())];
            let size = jitter(&mut self.rng, base, 0.15).max(2048);
            let fsync = self.rng.gen_bool(0.3);
            let mut wt = t;
            self.write_file(&mut wt, client, pid, f, size, true, fsync);
            self.attribute("edit-save", size);
            t += SimDuration::from_secs_f64(
                exponential(&mut self.rng, save_gap).clamp(20.0, 3600.0),
            );
        }
        // Autosaves.
        let auto_gap = 150.0 / (self.intensity * intensity);
        let mut t = w.0 + SimDuration::from_secs_f64(exponential(&mut self.rng, auto_gap));
        while t < w.1 {
            let mut wt = t;
            self.write_file(&mut wt, client, pid, autosave, autosave_size, true, false);
            self.attribute("autosave", autosave_size);
            t +=
                SimDuration::from_secs_f64(exponential(&mut self.rng, auto_gap).clamp(15.0, 900.0));
        }
        // The autosave file is removed at session end.
        self.push(w.1, client, pid, EventKind::Delete { file: autosave });
        self.sizes.remove(&autosave);
    }

    /// Log appends over the whole day; these bytes never die, so they are
    /// part of the "Remaining" row of Table 2.
    fn gen_log_appends(&mut self, client: ClientId, intensity: f64) {
        let pid = self.pid(client, Slot::Log);
        let log = self.new_file();
        let gap = 120.0 / (self.intensity * intensity);
        let mut t = SimTime::ZERO + SimDuration::from_secs_f64(exponential(&mut self.rng, gap));
        while t < self.end {
            let len =
                (scaled_size(&mut self.rng, self.cfg.scale, 2.0 * 1024.0, 0.5, 16 << 10)).max(256);
            let mut wt = t;
            self.append_file(&mut wt, client, pid, log, len);
            self.attribute("log-append", len);
            t += SimDuration::from_secs_f64(exponential(&mut self.rng, gap).clamp(5.0, 1800.0));
        }
    }

    /// Slowly-churning working files: a small per-client set of data files
    /// rewritten a few times over the day. Their bytes die hours after
    /// being written, which is what makes additional NVRAM keep paying off
    /// (gradually) beyond the first megabyte in Figure 3.
    fn gen_slow_churn(&mut self, client: ClientId, intensity: f64) {
        let pid = self.pid(client, Slot::Output);
        let day = self.end.as_micros() as f64;
        let rewrite_gap_secs = (day / 1e6 / 6.0).max(3600.0) / (self.intensity * intensity);
        for _ in 0..8 {
            let f = self.new_file();
            let size = scaled_size(&mut self.rng, self.cfg.scale, 110.0 * 1024.0, 0.5, 1 << 20);
            let mut t = SimTime::from_micros((day * (0.03 + 0.22 * self.rng.gen::<f64>())) as u64);
            let stop = SimTime::from_micros((day * 0.95) as u64);
            while t < stop {
                let mut wt = t;
                self.write_file(&mut wt, client, pid, f, size, true, false);
                self.attribute("slow-churn", size);
                t += SimDuration::from_secs_f64(
                    exponential(&mut self.rng, rewrite_gap_secs).clamp(900.0, day / 1e6),
                );
            }
        }
    }

    /// Shared project files: this client writes a file and a colleague
    /// opens it minutes later, forcing the server to recall (call back) the
    /// dirty data — the dominant server-write category of Table 2.
    fn gen_shared_handoffs(&mut self, client: ClientId, w: (SimTime, SimTime), intensity: f64) {
        let pid = self.pid(client, Slot::Share);
        let gap = 18.0 * 60.0 / (self.intensity * intensity);
        let mut t = w.0 + SimDuration::from_secs_f64(exponential(&mut self.rng, gap));
        while t < w.1 {
            let f = self.new_file();
            let size = scaled_size(&mut self.rng, self.cfg.scale, 140.0 * 1024.0, 0.8, 2 << 20);
            let mut wt = t;
            self.write_file(&mut wt, client, pid, f, size, false, false);
            self.attribute("shared-handoff", size);
            // A colleague opens the file after an exponential delay.
            let reader = self.other_client(client);
            let reader_pid = self.pid(reader, Slot::Reader);
            let delay = exponential(&mut self.rng, 12.0 * 60.0).clamp(30.0, 4.0 * 3600.0);
            let mut rt = wt + SimDuration::from_secs_f64(delay);
            if rt < self.end {
                // Colleagues often inspect only part of a shared file; a
                // block-granular consistency protocol benefits from this.
                let read_len = if size > 48 << 10 {
                    self.rng.gen_range(size / 4..=size)
                } else {
                    size
                };
                self.read_file(&mut rt, reader, reader_pid, f, 0, read_len);
            }
            t += SimDuration::from_secs_f64(
                exponential(&mut self.rng, gap).clamp(60.0, 4.0 * 3600.0),
            );
        }
    }

    /// New data files (results, documents) that persist to the end of the
    /// trace: the non-log component of "Remaining".
    fn gen_persistent_outputs(&mut self, client: ClientId, w: (SimTime, SimTime), intensity: f64) {
        let pid = self.pid(client, Slot::Output);
        let gap = 45.0 * 60.0 / (self.intensity * intensity);
        let mut t = w.0 + SimDuration::from_secs_f64(exponential(&mut self.rng, gap));
        while t < w.1 {
            let f = self.new_file();
            let size = scaled_size(&mut self.rng, self.cfg.scale, 120.0 * 1024.0, 0.8, 2 << 20);
            let mut wt = t;
            self.write_file(&mut wt, client, pid, f, size, false, false);
            self.attribute("persistent-output", size);
            t += SimDuration::from_secs_f64(
                exponential(&mut self.rng, gap).clamp(120.0, 6.0 * 3600.0),
            );
        }
    }

    /// Read activity over the shared corpus with per-client preference:
    /// 75% of reads hit the client's own slice of the corpus, the rest are
    /// global, both Zipf-popular.
    fn gen_reads(&mut self, client: ClientId, w: (SimTime, SimTime), intensity: f64) {
        let pid = self.pid(client, Slot::Reader);
        let n = self.corpus.len();
        if n == 0 {
            return;
        }
        let slice_len = (n / self.cfg.clients.max(1)).max(1);
        let slice_start = (client.index() * slice_len) % n;
        let zipf_local = Zipf::new(slice_len, 0.4);
        let gap = 9.0 / (self.intensity * intensity);
        // Recently-read corpus indices, most recent last. Re-references at
        // an exponential stack depth give the miss ratio a smooth,
        // cache-size-sensitive profile (the paper's clients saw ~60% read
        // absorption at ~7 MB with further gains from more memory).
        let mut recent: Vec<usize> = Vec::new();
        let mut t = w.0 + SimDuration::from_secs_f64(exponential(&mut self.rng, gap));
        while t < w.1 {
            let idx = if !recent.is_empty() && self.rng.gen_bool(0.6) {
                // Re-reference at an exponential LRU-stack depth. `recent`
                // is a true LRU stack of *distinct* files (move-to-back on
                // every reference), so a sampled depth of ~180 files is a
                // genuine stack distance of roughly 10 MB -- the 8..16 MB
                // cache range is exactly where these hits become misses.
                let depth = (exponential(&mut self.rng, 180.0) as usize).min(recent.len() - 1);
                recent[recent.len() - 1 - depth]
            } else if self.rng.gen_bool(0.75) {
                (slice_start + zipf_local.sample(&mut self.rng)) % n
            } else {
                self.zipf_global.sample(&mut self.rng)
            };
            if let Some(pos) = recent.iter().rposition(|&x| x == idx) {
                recent.remove(pos);
            }
            recent.push(idx);
            let (f, size) = self.corpus[idx];
            // Big files are read in slices, small ones whole.
            let (off, len) = if size > 256 << 10 {
                let len = self.rng.gen_range((48 << 10)..=(128 << 10)).min(size);
                let off = self.rng.gen_range(0..=(size - len));
                (off, len)
            } else {
                (0, size)
            };
            let mut rt = t;
            self.read_file(&mut rt, client, pid, f, off, len);
            t += SimDuration::from_secs_f64(exponential(&mut self.rng, gap).clamp(0.5, 600.0));
        }
    }

    /// The long-running simulation workload of traces 3 and 4: a large
    /// output file rewritten from scratch every ~quarter hour (bytes die by
    /// truncation within ~30 minutes) plus a small status file rewritten
    /// every few seconds (the 5–10% of bytes that die within 30 seconds).
    fn gen_simulation_run(&mut self, client: ClientId) {
        let pid = self.pid(client, Slot::Sim);
        let output = self.new_file();
        let status = self.new_file();
        let out_size = scaled_size(
            &mut self.rng,
            self.cfg.scale,
            20.0 * 1024.0 * 1024.0,
            0.3,
            64 << 20,
        );
        let status_size = scaled_size(&mut self.rng, self.cfg.scale, 16.0 * 1024.0, 0.2, 64 << 10);
        let t_end = SimTime::from_micros((self.end.as_micros() as f64 * 0.97) as u64);
        let mut t = SimTime::from_micros((self.end.as_micros() as f64 * 0.02) as u64);
        while t < t_end {
            // Checkpoint pass: truncate and rewrite the whole output file.
            let mut wt = t;
            self.write_file(&mut wt, client, pid, output, out_size, true, false);
            self.attribute("sim-checkpoint", out_size);
            // Compute phase with frequent status rewrites.
            let compute = exponential(&mut self.rng, 16.0 * 60.0).clamp(240.0, 3600.0);
            let phase_end = (wt + SimDuration::from_secs_f64(compute)).min(t_end);
            let mut st = wt + SimDuration::from_secs_f64(exponential(&mut self.rng, 9.0));
            while st < phase_end {
                let mut swt = st;
                self.write_file(&mut swt, client, pid, status, status_size, false, false);
                self.attribute("sim-status", status_size);
                st += SimDuration::from_secs_f64(exponential(&mut self.rng, 9.0).clamp(2.0, 60.0));
            }
            t = phase_end;
        }
    }

    /// Rare concurrent write-sharing incidents: two clients hold the same
    /// file open, at least one writing, so caching is disabled and all the
    /// traffic goes straight to the server (a "minuscule" category in
    /// Table 2).
    fn gen_concurrent_incidents(&mut self, intensity: f64) {
        if self.cfg.clients < 2 {
            return;
        }
        let n = ((3.0 * intensity).round() as usize).max(1);
        for _ in 0..n {
            let a = ClientId(self.rng.gen_range(0..self.cfg.clients) as u32);
            let b = self.other_client(a);
            let pid_a = self.pid(a, Slot::Concurrent);
            let pid_b = self.pid(b, Slot::Concurrent);
            let f = self.new_file();
            let start = self.rand_time(0.1, 0.85);
            let mut t = start;
            self.push(
                t,
                a,
                pid_a,
                EventKind::Open {
                    file: f,
                    mode: OpenMode::Write,
                },
            );
            bump(&mut t, 50_000);
            self.push(
                t,
                b,
                pid_b,
                EventKind::Open {
                    file: f,
                    mode: OpenMode::ReadWrite,
                },
            );
            bump(&mut t, 50_000);
            let rounds = self.rng.gen_range(3..7);
            let chunk = scaled_size(&mut self.rng, self.cfg.scale, 6.0 * 1024.0, 0.3, 32 << 10);
            for _ in 0..rounds {
                self.push(
                    t,
                    a,
                    pid_a,
                    EventKind::Write {
                        file: f,
                        len: chunk,
                    },
                );
                bump(&mut t, chunk.max(5_000));
                self.push(
                    t,
                    b,
                    pid_b,
                    EventKind::Write {
                        file: f,
                        len: chunk,
                    },
                );
                bump(&mut t, chunk.max(5_000));
                self.attribute("concurrent-share", 2 * chunk);
            }
            self.push(t, a, pid_a, EventKind::Close { file: f });
            bump(&mut t, 2_000);
            self.push(t, b, pid_b, EventKind::Close { file: f });
            self.sizes.insert(f, rounds as u64 * chunk);
        }
    }

    /// A few process migrations per trace: Sprite flushes the migrating
    /// process's dirty files to the server (<1% of traffic in the paper).
    fn gen_migrations(&mut self) {
        if self.cfg.clients < 2 {
            return;
        }
        for _ in 0..3 {
            let c = ClientId(self.rng.gen_range(0..self.cfg.clients) as u32);
            let to = self.other_client(c);
            let pid = self.pid(c, Slot::Compile);
            let t = self.rand_time(0.25, 0.8);
            self.push(t, c, pid, EventKind::Migrate { to });
        }
    }

    fn other_client(&mut self, not: ClientId) -> ClientId {
        loop {
            let c = ClientId(self.rng.gen_range(0..self.cfg.clients) as u32);
            if c != not || self.cfg.clients == 1 {
                return c;
            }
        }
    }

    fn rand_time(&mut self, lo: f64, hi: f64) -> SimTime {
        let t = self.end.as_micros() as f64;
        SimTime::from_micros((t * self.rng.gen_range(lo..hi)) as u64)
    }
}

/// Advances `*t` by `micros`.
fn bump(t: &mut SimTime, micros: u64) {
    *t += SimDuration::from_micros(micros);
}

/// Log-normal size sample scaled by the config's volume factor and clamped.
fn scaled_size<R: Rng + ?Sized>(rng: &mut R, scale: f64, median: f64, sigma: f64, cap: u64) -> u64 {
    let raw = lognormal(rng, median * scale, sigma);
    (raw as u64).clamp(1024, cap)
}

/// Multiplies `base` by a uniform factor in `[1-spread, 1+spread]`.
fn jitter<R: Rng + ?Sized>(rng: &mut R, base: u64, spread: f64) -> u64 {
    let factor = 1.0 + spread * (2.0 * rng.gen::<f64>() - 1.0);
    (base as f64 * factor) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;

    #[test]
    fn generates_eight_traces() {
        let set = SpriteTraceSet::generate(&TraceSetConfig::tiny());
        assert_eq!(set.traces().len(), TRACE_COUNT);
        for (i, t) in set.traces().iter().enumerate() {
            assert_eq!(t.number(), i + 1);
            assert!(!t.events().is_empty(), "trace {} is empty", i + 1);
            assert!(!t.ops().is_empty());
        }
    }

    #[test]
    fn traces_3_and_4_are_large() {
        let set = SpriteTraceSet::generate(&TraceSetConfig::tiny());
        assert!(set.trace(2).is_large_file_workload());
        assert!(set.trace(3).is_large_file_workload());
        assert_eq!(set.typical().count(), 6);
        // Large traces move substantially more write bytes than typical ones.
        let large = set.trace(2).ops().app_write_bytes();
        let typical = set.trace(6).ops().app_write_bytes();
        assert!(
            large > typical * 2,
            "trace 3 wrote {large} bytes vs typical {typical}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SpriteTraceSet::generate(&TraceSetConfig::tiny());
        let b = SpriteTraceSet::generate(&TraceSetConfig::tiny());
        for (ta, tb) in a.traces().iter().zip(b.traces()) {
            assert_eq!(ta.events(), tb.events());
        }
    }

    #[test]
    fn events_are_time_ordered() {
        let set = SpriteTraceSet::generate(&TraceSetConfig::tiny());
        for t in set.traces() {
            let mut last = SimTime::ZERO;
            for e in t.events() {
                assert!(e.time >= last);
                last = e.time;
            }
        }
    }

    #[test]
    fn events_stay_within_duration_with_slack() {
        let cfg = TraceSetConfig::tiny();
        let set = SpriteTraceSet::generate(&cfg);
        // Transfers may run slightly past the nominal end; allow 10% slack.
        let cap = SimTime::ZERO + cfg.duration() + SimDuration::from_secs(cfg.hours * 360);
        for t in set.traces() {
            assert!(t.ops().end_time() < cap);
        }
    }

    #[test]
    fn workload_contains_all_op_kinds() {
        let set = SpriteTraceSet::generate(&TraceSetConfig::tiny());
        let mut saw_write = false;
        let mut saw_read = false;
        let mut saw_delete = false;
        let mut saw_fsync = false;
        let mut saw_truncate = false;
        let mut saw_migrate = false;
        for t in set.traces() {
            for op in t.ops() {
                match op.kind {
                    OpKind::Write { .. } => saw_write = true,
                    OpKind::Read { .. } => saw_read = true,
                    OpKind::Delete { .. } => saw_delete = true,
                    OpKind::Fsync { .. } => saw_fsync = true,
                    OpKind::Truncate { .. } => saw_truncate = true,
                    OpKind::Migrate { .. } => saw_migrate = true,
                    _ => {}
                }
            }
        }
        assert!(saw_write && saw_read && saw_delete && saw_fsync && saw_truncate && saw_migrate);
    }

    #[test]
    fn manifest_accounts_for_every_written_byte() {
        let set = SpriteTraceSet::generate(&TraceSetConfig::tiny());
        for t in set.traces() {
            let manifest_total: u64 = t.manifest().values().sum();
            // Every write the generator emits is attributed to a class;
            // the op stream may exceed the manifest only by block-cursor
            // effects (there are none: both count event lengths).
            assert_eq!(
                manifest_total,
                t.ops().app_write_bytes(),
                "trace {} manifest {:?}",
                t.number(),
                t.manifest()
            );
        }
    }

    #[test]
    fn class_mix_matches_the_calibration_targets() {
        let set = SpriteTraceSet::generate(&TraceSetConfig::tiny());
        for t in set.typical() {
            // Short-lived compiler temporaries drive the ≤30 s deaths.
            let temps = t.class_fraction("compile-temp");
            assert!(
                (0.10..=0.45).contains(&temps),
                "trace {}: temps {temps:.2}",
                t.number()
            );
            // Shared handoffs drive consistency callbacks.
            let shared = t.class_fraction("shared-handoff");
            assert!(
                (0.03..=0.35).contains(&shared),
                "trace {}: shared {shared:.2}",
                t.number()
            );
            // Slow churn gives additional NVRAM megabytes something to do.
            assert!(
                t.class_fraction("slow-churn") > 0.05,
                "trace {}",
                t.number()
            );
            // Concurrent write-sharing stays minuscule.
            assert!(
                t.class_fraction("concurrent-share") < 0.02,
                "trace {}",
                t.number()
            );
            // No simulation output on typical days.
            assert_eq!(t.class_fraction("sim-checkpoint"), 0.0);
        }
        for t in [set.trace(2), set.trace(3)] {
            // The large-file traces are dominated by checkpoint passes.
            assert!(
                t.class_fraction("sim-checkpoint") > 0.5,
                "trace {}: {:?}",
                t.number(),
                t.manifest()
            );
        }
    }

    #[test]
    fn reads_dominate_writes_on_typical_traces() {
        let set = SpriteTraceSet::generate(&TraceSetConfig::tiny());
        for t in set.typical() {
            let r = t.ops().app_read_bytes();
            let w = t.ops().app_write_bytes();
            assert!(r > w, "trace {}: reads {} writes {}", t.number(), r, w);
        }
    }
}
