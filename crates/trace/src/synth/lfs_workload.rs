//! Server-side workloads for the LFS write-buffer study (§3).
//!
//! The paper sampled kernel counters of the main Sprite file server for two
//! weeks across eight LFS file systems (Table 3). We synthesize one
//! *arrival stream of dirty bytes and fsyncs* per file system, shaped after
//! the paper's description of each:
//!
//! * `/user6` — home directories plus "long-running data base benchmarks
//!   that request five fsyncs after every database transaction"; almost all
//!   its segment writes are tiny fsync-forced partials.
//! * `/local` — program installations: bursty writes, essentially no fsync.
//! * `/swap1` — paging traffic; "applications never write directly to the
//!   swap disk", so no fsyncs at all.
//! * `/user1`, `/user2`, `/user4` — home directories: editor saves (some
//!   fsync'd) plus development trickle.
//! * `/sprite/src/kernel` — the kernel development area: build bursts and
//!   fsync'd source saves.
//! * `/scratch4` — long-lived trace data, rarely touched.
//!
//! The streams are inputs to [`nvfs-lfs`](https://docs.rs/nvfs-lfs)'s
//! segment writer; the Table 3/4 percentages are *outputs* of that
//! simulation, not constants baked in here.

use nvfs_rng::{Rng, SeedableRng, StdRng};

use nvfs_types::{ByteRange, FileId, SimDuration, SimTime};

use crate::synth::dist::{exponential, lognormal};

/// A server-side operation against one LFS file system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LfsOp {
    /// When the operation reached the server.
    pub time: SimTime,
    /// What happened.
    pub kind: LfsOpKind,
}

/// The kind of an [`LfsOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LfsOpKind {
    /// Bytes became dirty in the server's cache.
    Write {
        /// File written.
        file: FileId,
        /// Byte range written.
        range: ByteRange,
    },
    /// An application forced the file's dirty data to disk.
    Fsync {
        /// File fsync'd.
        file: FileId,
    },
    /// The file was deleted (its blocks die in the log; cleaner work).
    Delete {
        /// File deleted.
        file: FileId,
    },
}

/// A day of traffic for one named file system.
#[derive(Debug, Clone)]
pub struct FsWorkload {
    /// Mount point, e.g. `/user6`.
    pub name: &'static str,
    /// Time-ordered operations.
    pub ops: Vec<LfsOp>,
}

impl FsWorkload {
    /// Total bytes written to this file system.
    pub fn write_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|o| match o.kind {
                LfsOpKind::Write { range, .. } => range.len(),
                _ => 0,
            })
            .sum()
    }

    /// Number of fsync operations.
    pub fn fsync_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o.kind, LfsOpKind::Fsync { .. }))
            .count()
    }
}

/// Configuration for [`sprite_server_workloads`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerWorkloadConfig {
    /// Deterministic seed.
    pub seed: u64,
    /// Observation window in hours (the paper sampled for two weeks; a
    /// single day reproduces the same per-segment statistics).
    pub hours: u64,
    /// Rate multiplier on activity (1.0 ≈ paper-scale daily volume).
    pub scale: f64,
}

impl ServerWorkloadConfig {
    /// Paper-scale: 24 hours of full-rate traffic.
    pub fn paper() -> Self {
        ServerWorkloadConfig {
            seed: 3990,
            hours: 24,
            scale: 1.0,
        }
    }

    /// Reduced scale for tests and examples.
    pub fn small() -> Self {
        ServerWorkloadConfig {
            seed: 3990,
            hours: 6,
            scale: 0.6,
        }
    }

    /// Minimal scale for unit tests.
    pub fn tiny() -> Self {
        ServerWorkloadConfig {
            seed: 11,
            hours: 2,
            scale: 0.4,
        }
    }

    /// Cluster-scale: a two-day window at moderate rate, matching the
    /// wide-cluster client traces of `TraceSetConfig::mega`.
    pub fn mega() -> Self {
        ServerWorkloadConfig {
            seed: 3990,
            hours: 48,
            scale: 0.5,
        }
    }

    fn end(&self) -> SimTime {
        SimTime::from_hours(self.hours)
    }
}

impl Default for ServerWorkloadConfig {
    fn default() -> Self {
        ServerWorkloadConfig::small()
    }
}

/// The eight Sprite file systems of Table 3, in the paper's row order.
pub const SPRITE_FILE_SYSTEMS: [&str; 8] = [
    "/user6",
    "/local",
    "/swap1",
    "/user1",
    "/user4",
    "/sprite/src/kernel",
    "/user2",
    "/scratch4",
];

/// Generates the eight per-file-system workloads deterministically.
///
/// # Examples
///
/// ```
/// use nvfs_trace::synth::lfs_workload::{sprite_server_workloads, ServerWorkloadConfig};
///
/// let ws = sprite_server_workloads(&ServerWorkloadConfig::tiny());
/// assert_eq!(ws.len(), 8);
/// assert_eq!(ws[0].name, "/user6");
/// assert_eq!(ws[2].fsync_count(), 0); // /swap1 never fsyncs
/// ```
pub fn sprite_server_workloads(cfg: &ServerWorkloadConfig) -> Vec<FsWorkload> {
    SPRITE_FILE_SYSTEMS
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let mut g = FsGen::new(cfg, i as u64);
            match *name {
                "/user6" => g.user6(),
                "/local" => g.local(),
                "/swap1" => g.swap(),
                "/user1" => g.home(1.0, 0.18),
                "/user4" => g.home(0.8, 0.10),
                "/sprite/src/kernel" => g.kernel(),
                "/user2" => g.home(0.16, 0.20),
                "/scratch4" => g.scratch(),
                _ => unreachable!("unknown file system"),
            };
            FsWorkload {
                name,
                ops: g.finish(),
            }
        })
        .collect()
}

struct FsGen {
    rng: StdRng,
    ops: Vec<LfsOp>,
    next_file: u32,
    end: SimTime,
    scale: f64,
}

impl FsGen {
    fn new(cfg: &ServerWorkloadConfig, salt: u64) -> Self {
        FsGen {
            rng: StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x517C_C1B7).wrapping_add(salt)),
            ops: Vec::new(),
            next_file: 0,
            end: cfg.end(),
            scale: cfg.scale,
        }
    }

    fn finish(mut self) -> Vec<LfsOp> {
        self.ops.sort_by_key(|o| o.time);
        self.ops
    }

    fn file(&mut self) -> FileId {
        let f = FileId(self.next_file);
        self.next_file += 1;
        f
    }

    fn write(&mut self, t: SimTime, file: FileId, offset: u64, len: u64) {
        self.ops.push(LfsOp {
            time: t,
            kind: LfsOpKind::Write {
                file,
                range: ByteRange::at(offset, len),
            },
        });
    }

    fn fsync(&mut self, t: SimTime, file: FileId) {
        self.ops.push(LfsOp {
            time: t,
            kind: LfsOpKind::Fsync { file },
        });
    }

    fn delete(&mut self, t: SimTime, file: FileId) {
        self.ops.push(LfsOp {
            time: t,
            kind: LfsOpKind::Delete { file },
        });
    }

    fn gap(&mut self, mean_secs: f64) -> SimDuration {
        SimDuration::from_secs_f64(exponential(&mut self.rng, mean_secs / self.scale))
    }

    fn size(&mut self, median: f64, sigma: f64, cap: u64) -> u64 {
        (lognormal(&mut self.rng, median, sigma) as u64).clamp(512, cap)
    }

    /// `/user6`: the database benchmark. Each transaction updates a page or
    /// two and the log, issuing five fsyncs; only the fsyncs that find new
    /// dirty data force a segment. A nightly bulk load provides the few
    /// full segments the paper observed, and a home-dir trickle provides
    /// timeout partials.
    fn user6(&mut self) {
        let db = self.file();
        let log = self.file();
        // Benchmark runs for ~70% of the observation window.
        let bench_end = scale_time(self.end, 0.72);
        let mut t = scale_time(self.end, 0.02);
        while t < bench_end {
            // Page update.
            let page = self.rng.gen_range(0..4096u64);
            let plen = self.size(5.0 * 1024.0, 0.4, 16 << 10);
            self.write(t, db, page * 4096, plen);
            self.fsync(t + SimDuration::from_millis(8), db);
            // Log record.
            let llen = self.size(2.5 * 1024.0, 0.4, 8 << 10);
            self.write(t + SimDuration::from_millis(16), log, 0, llen);
            self.fsync(t + SimDuration::from_millis(22), log);
            // Three redundant fsyncs (no new dirty data).
            for k in 0..3u64 {
                self.fsync(t + SimDuration::from_millis(30 + 4 * k), log);
            }
            t += self.gap(6.0).max(SimDuration::from_millis(200));
        }
        // Nightly bulk load: sequential full-bandwidth write.
        let bulk = self.file();
        let mut off = 0;
        let bulk_total = (80.0 * 1024.0 * 1024.0 * self.scale) as u64;
        let mut bt = scale_time(self.end, 0.8);
        while off < bulk_total && bt < self.end {
            let chunk = 256 << 10;
            self.write(bt, bulk, off, chunk);
            off += chunk;
            bt += SimDuration::from_millis(300);
        }
        // Home-directory trickle across the whole day.
        self.trickle(0.0, 1.0, 120.0, 8.0 * 1024.0, 0.8);
    }

    /// `/local`: program installations — bursts of files, almost no fsync.
    fn local(&mut self) {
        let mut t = SimTime::ZERO + self.gap(300.0);
        let mut installs = 0u32;
        while t < self.end {
            let total = self.size(220.0 * 1024.0, 0.9, 4 << 20);
            let mut written = 0;
            let mut bt = t;
            while written < total {
                let f = self.file();
                let len = self
                    .size(30.0 * 1024.0, 0.7, 256 << 10)
                    .min(total - written);
                self.write(bt, f, 0, len);
                written += len;
                bt += SimDuration::from_millis(self.rng.gen_range(20..200));
            }
            installs += 1;
            // One install in a great while runs `sync`-style fsyncs.
            if installs.is_multiple_of(150) {
                let f = self.file();
                self.write(bt, f, 0, 4096);
                self.fsync(bt + SimDuration::from_millis(5), f);
            }
            t += self.gap(4.0 * 60.0);
        }
    }

    /// `/swap1`: paging. Mostly small page-out bursts that age into timeout
    /// partials, with occasional heavy paging episodes that fill segments.
    /// Never fsyncs.
    fn swap(&mut self) {
        let swap_file = self.file();
        let mut t = SimTime::ZERO + self.gap(60.0);
        while t < self.end {
            let heavy = self.rng.gen_bool(0.08);
            let total = if heavy {
                self.size(2.0 * 1024.0 * 1024.0, 0.5, 16 << 20)
            } else {
                self.size(45.0 * 1024.0, 0.8, 300 << 10)
            };
            let mut written = 0;
            let mut bt = t;
            while written < total {
                let len = (32u64 << 10).min(total - written);
                let page_slot = self.rng.gen_range(0..65_536u64);
                self.write(bt, swap_file, page_slot * 4096, len);
                written += len;
                bt += SimDuration::from_millis(self.rng.gen_range(5..40));
            }
            t += self.gap(2.0 * 60.0);
        }
    }

    /// Home directories: editor saves (a fraction fsync'd) plus a
    /// development trickle and occasional large copies.
    ///
    /// `activity` scales the overall rate; `fsync_share` is the fraction of
    /// *segment-forcing events* that should be fsyncs, which we realize by
    /// interleaving fsync'd saves with non-fsync'd trickle writes.
    fn home(&mut self, activity: f64, fsync_share: f64) {
        // Editor saves with fsync.
        let saves_gap = 12.0 * 60.0 / activity * (0.18 / fsync_share).powf(1.5).clamp(0.3, 6.0);
        let doc = self.file();
        let mut t = SimTime::ZERO + self.gap(saves_gap);
        while t < self.end {
            let len = self.size(16.0 * 1024.0, 0.5, 128 << 10);
            self.write(t, doc, 0, len);
            self.fsync(t + SimDuration::from_millis(10), doc);
            t += self.gap(saves_gap);
        }
        // Development trickle: isolated writes that age out via the
        // 30-second flush.
        self.trickle(0.05, 0.95, 210.0 / activity, 20.0 * 1024.0, 0.8);
        // Occasional large copies: the ~10% full segments.
        let copies = ((4.0 * activity * self.scale).round() as usize).max(1);
        for _ in 0..copies {
            let start = scale_time(self.end, 0.1 + 0.8 * self.rng.gen::<f64>());
            let f = self.file();
            let total = self.size(3.0 * 1024.0 * 1024.0 * activity, 0.4, 16 << 20);
            let mut off = 0;
            let mut bt = start;
            while off < total {
                let chunk = 128 << 10;
                self.write(bt, f, off, chunk.min(total - off));
                off += chunk;
                bt += SimDuration::from_millis(150);
            }
        }
    }

    /// `/sprite/src/kernel`: kernel builds (bursts of object files, some
    /// link phases filling whole segments) plus fsync'd source saves.
    fn kernel(&mut self) {
        // Builds.
        let mut t = SimTime::ZERO + self.gap(40.0 * 60.0);
        while t < self.end {
            // Compile phase: steady object-file output.
            let objects = self.rng.gen_range(8..24);
            let mut bt = t;
            for _ in 0..objects {
                let f = self.file();
                let len = self.size(28.0 * 1024.0, 0.6, 192 << 10);
                self.write(bt, f, 0, len);
                bt += SimDuration::from_secs_f64(exponential(&mut self.rng, 8.0));
            }
            // Link phase: one large image written quickly.
            if self.rng.gen_bool(0.95) {
                let image = self.file();
                let total = self.size(2.6 * 1024.0 * 1024.0, 0.3, 8 << 20);
                let mut off = 0;
                while off < total {
                    let chunk = 128 << 10;
                    self.write(bt, image, off, chunk.min(total - off));
                    off += chunk;
                    bt += SimDuration::from_millis(120);
                }
            }
            t += self.gap(40.0 * 60.0);
        }
        // Source saves with fsync (editors on the kernel tree).
        let src = self.file();
        let mut t = SimTime::ZERO + self.gap(9.0 * 60.0);
        while t < self.end {
            let len = self.size(52.0 * 1024.0, 0.4, 256 << 10);
            self.write(t, src, 0, len);
            self.fsync(t + SimDuration::from_millis(10), src);
            t += self.gap(9.0 * 60.0);
        }
    }

    /// `/scratch4`: long-lived trace data, written rarely, never fsync'd.
    fn scratch(&mut self) {
        let sessions = ((2.0 * self.scale).round() as usize).max(1);
        for _ in 0..sessions {
            let start = scale_time(self.end, 0.15 + 0.7 * self.rng.gen::<f64>());
            let f = self.file();
            let mut t = start;
            let dumps = self.rng.gen_range(3..7);
            let mut off = 0;
            for _ in 0..dumps {
                let len = self.size(30.0 * 1024.0, 0.5, 256 << 10);
                self.write(t, f, off, len);
                off += len;
                t += SimDuration::from_secs_f64(exponential(&mut self.rng, 240.0));
            }
        }
    }

    /// Background trickle: isolated small writes, each typically aging out
    /// as its own timeout partial. Occasionally deletes its file to give
    /// the cleaner dead blocks.
    fn trickle(&mut self, from: f64, to: f64, mean_gap: f64, median: f64, sigma: f64) {
        let start = scale_time(self.end, from);
        let stop = scale_time(self.end, to);
        let mut t = start + self.gap(mean_gap);
        let mut current = self.file();
        let mut writes = 0u32;
        while t < stop {
            let len = self.size(median, sigma, 256 << 10);
            self.write(t, current, 0, len);
            writes += 1;
            if writes.is_multiple_of(24) {
                self.delete(t + SimDuration::from_secs(1), current);
                current = self.file();
            }
            t += self.gap(mean_gap);
        }
    }
}

fn scale_time(end: SimTime, f: f64) -> SimTime {
    SimTime::from_micros((end.as_micros() as f64 * f) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_filesystems_in_paper_order() {
        let ws = sprite_server_workloads(&ServerWorkloadConfig::tiny());
        let names: Vec<&str> = ws.iter().map(|w| w.name).collect();
        assert_eq!(names, SPRITE_FILE_SYSTEMS.to_vec());
    }

    #[test]
    fn swap_and_scratch_never_fsync() {
        let ws = sprite_server_workloads(&ServerWorkloadConfig::tiny());
        assert_eq!(ws[2].fsync_count(), 0, "/swap1 must not fsync");
        assert_eq!(ws[7].fsync_count(), 0, "/scratch4 must not fsync");
    }

    #[test]
    fn user6_is_fsync_heavy() {
        let ws = sprite_server_workloads(&ServerWorkloadConfig::tiny());
        let user6 = &ws[0];
        let writes = user6
            .ops
            .iter()
            .filter(|o| matches!(o.kind, LfsOpKind::Write { .. }))
            .count();
        assert!(
            user6.fsync_count() > writes,
            "db benchmark issues 5 fsyncs per transaction"
        );
    }

    #[test]
    fn ops_are_time_ordered() {
        for w in sprite_server_workloads(&ServerWorkloadConfig::tiny()) {
            let mut last = SimTime::ZERO;
            for op in &w.ops {
                assert!(op.time >= last, "{} out of order", w.name);
                last = op.time;
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = sprite_server_workloads(&ServerWorkloadConfig::tiny());
        let b = sprite_server_workloads(&ServerWorkloadConfig::tiny());
        for (wa, wb) in a.iter().zip(&b) {
            assert_eq!(wa.ops, wb.ops);
        }
    }

    #[test]
    fn user6_dominates_fsync_traffic() {
        let ws = sprite_server_workloads(&ServerWorkloadConfig::tiny());
        let user6 = ws[0].fsync_count();
        let rest: usize = ws[1..].iter().map(|w| w.fsync_count()).sum();
        assert!(user6 > rest * 5, "user6 {user6} vs rest {rest}");
    }
}
