//! Small sampling helpers used by the workload synthesizer.
//!
//! Implemented locally (rather than pulling in `rand_distr`) so the
//! generator stays dependency-light and fully deterministic under a seeded
//! [`nvfs_rng::Rng`].

use nvfs_rng::Rng;

/// Samples an exponential variate with the given `mean`.
///
/// # Panics
///
/// Panics if `mean` is not strictly positive and finite.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(
        mean > 0.0 && mean.is_finite(),
        "mean must be positive and finite"
    );
    // Inverse-CDF sampling; `gen` yields [0, 1), so 1-u is in (0, 1].
    let u: f64 = rng.gen();
    -mean * (1.0 - u).ln()
}

/// Samples a standard normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples a log-normal variate with the given `median` and log-space
/// standard deviation `sigma`.
///
/// # Panics
///
/// Panics if `median` is not strictly positive or `sigma` is negative.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    assert!(median > 0.0, "median must be positive");
    assert!(sigma >= 0.0, "sigma must be non-negative");
    (median.ln() + sigma * standard_normal(rng)).exp()
}

/// A precomputed Zipf-like popularity distribution over `n` items.
///
/// Item `i` (zero-based) has weight `1 / (i + 1)^s`. Used to pick which
/// corpus file a read references: a few files are very hot, most are cold.
///
/// # Examples
///
/// ```
/// use nvfs_trace::synth::dist::Zipf;
/// use nvfs_rng::{SeedableRng, StdRng};
///
/// let z = Zipf::new(100, 0.9);
/// let mut rng = StdRng::seed_from_u64(1);
/// let i = z.sample(&mut rng);
/// assert!(i < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution over `n` items with skew `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(s >= 0.0, "skew must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is over zero items (never true).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a zero-based item index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvfs_rng::{SeedableRng, StdRng};

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| exponential(&mut rng, 10.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean was {mean}");
    }

    #[test]
    fn lognormal_median_is_close() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut v: Vec<f64> = (0..20_001)
            .map(|_| lognormal(&mut rng, 100.0, 1.0))
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[v.len() / 2];
        assert!((median - 100.0).abs() < 10.0, "median was {median}");
    }

    #[test]
    fn zipf_prefers_low_indices() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut head = 0;
        let n = 10_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With s=1.0 over 1000 items, the top-10 share is ~39%.
        let share = head as f64 / n as f64;
        assert!(share > 0.3 && share < 0.5, "top-10 share was {share}");
    }

    #[test]
    fn zipf_with_zero_skew_is_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..8000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!(c > 1600 && c < 2400, "count was {c}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zipf_rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn samples_are_deterministic_for_seed() {
        let z = Zipf::new(50, 0.8);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
