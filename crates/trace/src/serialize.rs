//! A compact, line-oriented text format for op streams.
//!
//! Lets tools persist synthetic traces and replay them later (or import
//! externally produced traces), in the spirit of the original Sprite trace
//! files. One op per line:
//!
//! ```text
//! <micros> <client> O <file> R|W|RW      open
//! <micros> <client> C <file>             close
//! <micros> <client> r <file> <start> <end>   read
//! <micros> <client> w <file> <start> <end>   write
//! <micros> <client> T <file> <new_len>   truncate
//! <micros> <client> D <file>             delete
//! <micros> <client> F <file>             fsync
//! <micros> <client> M <pid> <to> [file,...]  migrate
//! ```
//!
//! Lines starting with `#` and blank lines are ignored.

use std::fmt::Write as _;

use nvfs_types::{ByteRange, ClientId, FileId, ProcessId, SimTime};

use crate::event::OpenMode;
use crate::op::{Op, OpKind, OpStream};

/// Error from [`parse_ops`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOpsError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseOpsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseOpsError {}

/// Renders `ops` in the line format.
///
/// # Examples
///
/// ```
/// use nvfs_trace::op::OpStream;
/// use nvfs_trace::serialize::{parse_ops, render_ops};
///
/// let text = render_ops(&OpStream::new());
/// assert!(parse_ops(&text).unwrap().is_empty());
/// ```
pub fn render_ops(ops: &OpStream) -> String {
    let mut out = String::with_capacity(ops.len() * 24);
    out.push_str("# nvfs op stream v1\n");
    for op in ops {
        let t = op.time.as_micros();
        let c = op.client.0;
        match &op.kind {
            OpKind::Open { file, mode } => {
                let m = match mode {
                    OpenMode::Read => "R",
                    OpenMode::Write => "W",
                    OpenMode::ReadWrite => "RW",
                };
                let _ = writeln!(out, "{t} {c} O {} {m}", file.0);
            }
            OpKind::Close { file } => {
                let _ = writeln!(out, "{t} {c} C {}", file.0);
            }
            OpKind::Read { file, range } => {
                let _ = writeln!(out, "{t} {c} r {} {} {}", file.0, range.start, range.end);
            }
            OpKind::Write { file, range } => {
                let _ = writeln!(out, "{t} {c} w {} {} {}", file.0, range.start, range.end);
            }
            OpKind::Truncate { file, new_len } => {
                let _ = writeln!(out, "{t} {c} T {} {new_len}", file.0);
            }
            OpKind::Delete { file } => {
                let _ = writeln!(out, "{t} {c} D {}", file.0);
            }
            OpKind::Fsync { file } => {
                let _ = writeln!(out, "{t} {c} F {}", file.0);
            }
            OpKind::Migrate { pid, to, files } => {
                let list: Vec<String> = files.iter().map(|f| f.0.to_string()).collect();
                let _ = writeln!(out, "{t} {c} M {} {} {}", pid.0, to.0, list.join(","));
            }
        }
    }
    out
}

/// Parses the line format back into an [`OpStream`].
///
/// # Errors
///
/// Returns the first malformed line with its 1-based number.
pub fn parse_ops(text: &str) -> Result<OpStream, ParseOpsError> {
    let mut ops = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: &str| ParseOpsError {
            line: line_no,
            message: message.to_string(),
        };
        let mut parts = line.split_whitespace();
        let time = SimTime::from_micros(
            parts
                .next()
                .ok_or_else(|| err("missing time"))?
                .parse()
                .map_err(|_| err("bad time"))?,
        );
        let client = ClientId(
            parts
                .next()
                .ok_or_else(|| err("missing client"))?
                .parse()
                .map_err(|_| err("bad client"))?,
        );
        let tag = parts.next().ok_or_else(|| err("missing op tag"))?;
        let mut num = |name: &str| -> Result<u64, ParseOpsError> {
            parts
                .next()
                .ok_or_else(|| err(&format!("missing {name}")))?
                .parse()
                .map_err(|_| err(&format!("bad {name}")))
        };
        let id32 = |name: &str, v: u64| -> Result<u32, ParseOpsError> {
            u32::try_from(v).map_err(|_| err(&format!("{name} out of range")))
        };
        let kind = match tag {
            "O" => {
                let file = FileId(id32("file", num("file")?)?);
                let mode = match parts.next().ok_or_else(|| err("missing mode"))? {
                    "R" => OpenMode::Read,
                    "W" => OpenMode::Write,
                    "RW" => OpenMode::ReadWrite,
                    other => return Err(err(&format!("bad mode {other:?}"))),
                };
                OpKind::Open { file, mode }
            }
            "C" => OpKind::Close {
                file: FileId(id32("file", num("file")?)?),
            },
            "r" | "w" => {
                let file = FileId(id32("file", num("file")?)?);
                let start = num("start")?;
                let end = num("end")?;
                if end < start {
                    return Err(err("range end before start"));
                }
                let range = ByteRange::new(start, end);
                if tag == "r" {
                    OpKind::Read { file, range }
                } else {
                    OpKind::Write { file, range }
                }
            }
            "T" => {
                let file = FileId(id32("file", num("file")?)?);
                OpKind::Truncate {
                    file,
                    new_len: num("new_len")?,
                }
            }
            "D" => OpKind::Delete {
                file: FileId(id32("file", num("file")?)?),
            },
            "F" => OpKind::Fsync {
                file: FileId(id32("file", num("file")?)?),
            },
            "M" => {
                let pid = ProcessId(id32("pid", num("pid")?)?);
                let to = ClientId(id32("to", num("to")?)?);
                let files = match parts.next() {
                    None | Some("") => Vec::new(),
                    Some(list) => list
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(|s| s.parse().map(FileId).map_err(|_| err("bad file list")))
                        .collect::<Result<Vec<_>, _>>()?,
                };
                OpKind::Migrate { pid, to, files }
            }
            other => return Err(err(&format!("unknown op tag {other:?}"))),
        };
        ops.push(Op { time, client, kind });
    }
    ops.sort_by_key(|o| o.time);
    Ok(ops.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SpriteTraceSet, TraceSetConfig};

    #[test]
    fn round_trips_a_synthetic_trace() {
        let set = SpriteTraceSet::generate(&TraceSetConfig::tiny());
        let ops = set.trace(0).ops();
        let text = render_ops(ops);
        let parsed = parse_ops(&text).expect("round trip parses");
        assert_eq!(&parsed, ops);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let parsed = parse_ops("# header\n\n  \n1000 0 D 3\n").unwrap();
        assert_eq!(parsed.len(), 1);
    }

    #[test]
    fn migrate_with_empty_file_list() {
        let parsed = parse_ops("5 1 M 7 2\n").unwrap();
        match &parsed.as_slice()[0].kind {
            OpKind::Migrate { pid, to, files } => {
                assert_eq!(pid.0, 7);
                assert_eq!(to.0, 2);
                assert!(files.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_ops("1000 0 D 3\nbogus line\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
        assert!(
            parse_ops("1 0 r 0 10 5\n").is_err(),
            "inverted range rejected"
        );
        assert!(parse_ops("1 0 O 0 X\n").is_err(), "bad mode rejected");
        assert!(parse_ops("1 0 Z 0\n").is_err(), "unknown tag rejected");
        assert!(
            parse_ops("1 0 D 4294967297\n").is_err(),
            "oversized id rejected"
        );
    }

    #[test]
    fn parser_sorts_by_time() {
        let parsed = parse_ops("2000 0 D 1\n1000 0 D 0\n").unwrap();
        let times: Vec<u64> = parsed.iter().map(|o| o.time.as_micros()).collect();
        assert_eq!(times, vec![1000, 2000]);
    }
}
