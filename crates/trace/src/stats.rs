//! Summary statistics over op streams.

use std::collections::BTreeSet;

use nvfs_types::{ClientId, FileId};

use crate::op::{OpKind, OpStream};

/// Aggregate statistics for one op stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Number of operations.
    pub ops: usize,
    /// Bytes read by applications.
    pub read_bytes: u64,
    /// Bytes written by applications.
    pub write_bytes: u64,
    /// Distinct files referenced.
    pub files: usize,
    /// Distinct clients active.
    pub clients: usize,
    /// Number of delete operations.
    pub deletes: usize,
    /// Number of fsync operations.
    pub fsyncs: usize,
    /// Number of open operations.
    pub opens: usize,
}

impl TraceStats {
    /// Computes statistics for `ops`.
    ///
    /// # Examples
    ///
    /// ```
    /// use nvfs_trace::op::OpStream;
    /// use nvfs_trace::stats::TraceStats;
    ///
    /// let stats = TraceStats::for_stream(&OpStream::new());
    /// assert_eq!(stats.ops, 0);
    /// ```
    pub fn for_stream(ops: &OpStream) -> Self {
        let mut files: BTreeSet<FileId> = BTreeSet::new();
        let mut clients: BTreeSet<ClientId> = BTreeSet::new();
        let mut s = TraceStats {
            ops: ops.len(),
            ..TraceStats::default()
        };
        for op in ops {
            clients.insert(op.client);
            if let Some(f) = op.file() {
                files.insert(f);
            }
            match &op.kind {
                OpKind::Read { range, .. } => s.read_bytes += range.len(),
                OpKind::Write { range, .. } => s.write_bytes += range.len(),
                OpKind::Delete { .. } => s.deletes += 1,
                OpKind::Fsync { .. } => s.fsyncs += 1,
                OpKind::Open { .. } => s.opens += 1,
                _ => {}
            }
        }
        s.files = files.len();
        s.clients = clients.len();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::OpenMode;
    use crate::op::Op;
    use nvfs_types::{ByteRange, SimTime};

    #[test]
    fn counts_are_accurate() {
        let ops: OpStream = vec![
            Op {
                time: SimTime::ZERO,
                client: ClientId(0),
                kind: OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            },
            Op {
                time: SimTime::from_secs(1),
                client: ClientId(0),
                kind: OpKind::Write {
                    file: FileId(0),
                    range: ByteRange::new(0, 100),
                },
            },
            Op {
                time: SimTime::from_secs(2),
                client: ClientId(1),
                kind: OpKind::Read {
                    file: FileId(1),
                    range: ByteRange::new(0, 50),
                },
            },
            Op {
                time: SimTime::from_secs(3),
                client: ClientId(0),
                kind: OpKind::Fsync { file: FileId(0) },
            },
            Op {
                time: SimTime::from_secs(4),
                client: ClientId(0),
                kind: OpKind::Delete { file: FileId(0) },
            },
        ]
        .into_iter()
        .collect();
        let s = TraceStats::for_stream(&ops);
        assert_eq!(s.ops, 5);
        assert_eq!(s.write_bytes, 100);
        assert_eq!(s.read_bytes, 50);
        assert_eq!(s.files, 2);
        assert_eq!(s.clients, 2);
        assert_eq!(s.deletes, 1);
        assert_eq!(s.fsyncs, 1);
        assert_eq!(s.opens, 1);
    }
}
