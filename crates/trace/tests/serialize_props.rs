//! Randomized tests for the op-stream text format: arbitrary streams must
//! round-trip exactly, and the parser must be total over rendered output
//! and arbitrary printable noise.
//!
//! Formerly proptest-based; now driven by a seeded [`nvfs_rng::StdRng`] so
//! the suite builds offline and failures reproduce exactly.

use nvfs_rng::{Rng, SeedableRng, StdRng};
use nvfs_trace::event::OpenMode;
use nvfs_trace::op::{Op, OpKind, OpStream};
use nvfs_trace::serialize::{parse_ops, render_ops};
use nvfs_types::{ByteRange, ClientId, FileId, ProcessId, SimTime};

fn rand_kind(rng: &mut StdRng) -> OpKind {
    let file = FileId(rng.gen_range(0..50u32));
    match rng.gen_range(0..8u32) {
        0 => OpKind::Open {
            file,
            mode: match rng.gen_range(0..3u32) {
                0 => OpenMode::Read,
                1 => OpenMode::Write,
                _ => OpenMode::ReadWrite,
            },
        },
        1 => OpKind::Close { file },
        2 => OpKind::Read {
            file,
            range: ByteRange::at(rng.gen_range(0..1_000_000u64), rng.gen_range(1..100_000u64)),
        },
        3 => OpKind::Write {
            file,
            range: ByteRange::at(rng.gen_range(0..1_000_000u64), rng.gen_range(1..100_000u64)),
        },
        4 => OpKind::Truncate {
            file,
            new_len: rng.gen_range(0..1_000_000u64),
        },
        5 => OpKind::Delete { file },
        6 => OpKind::Fsync { file },
        _ => OpKind::Migrate {
            pid: ProcessId(rng.gen_range(0..8u32)),
            to: ClientId(rng.gen_range(0..8u32)),
            files: (0..rng.gen_range(0..5usize))
                .map(|_| FileId(rng.gen_range(0..50u32)))
                .collect(),
        },
    }
}

fn rand_stream(rng: &mut StdRng) -> OpStream {
    let n = rng.gen_range(0..60usize);
    (0..n)
        .map(|_| Op {
            time: SimTime::from_micros(rng.gen_range(0..1_000_000u64)),
            client: ClientId(rng.gen_range(0..8u32)),
            kind: rand_kind(rng),
        })
        .collect()
}

#[test]
fn render_parse_round_trips() {
    let mut rng = StdRng::seed_from_u64(0x7EC7_0001);
    for _case in 0..256 {
        let stream = rand_stream(&mut rng);
        let text = render_ops(&stream);
        let parsed = parse_ops(&text).expect("rendered output must parse");
        assert_eq!(parsed, stream);
    }
}

#[test]
fn rendered_text_is_line_per_op() {
    let mut rng = StdRng::seed_from_u64(0x7EC7_0002);
    for _case in 0..256 {
        let stream = rand_stream(&mut rng);
        let text = render_ops(&stream);
        // Header comment plus one line per op.
        assert_eq!(text.lines().count(), stream.len() + 1);
    }
}

#[test]
fn parser_never_panics_on_noise() {
    // Totality: arbitrary printable input either parses or errors.
    let mut rng = StdRng::seed_from_u64(0x7EC7_0003);
    for _case in 0..512 {
        let len = rng.gen_range(0..200usize);
        let noise: String = (0..len)
            .map(|_| {
                if rng.gen_bool(0.1) {
                    '\n'
                } else {
                    char::from(rng.gen_range(0x20u32..0x7F) as u8)
                }
            })
            .collect();
        let _ = parse_ops(&noise);
    }
}
