//! Property tests for the op-stream text format: arbitrary streams must
//! round-trip exactly, and the parser must be total over rendered output.

use nvfs_trace::event::OpenMode;
use nvfs_trace::op::{Op, OpKind, OpStream};
use nvfs_trace::serialize::{parse_ops, render_ops};
use nvfs_types::{ByteRange, ClientId, FileId, ProcessId, SimTime};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = OpKind> {
    let file = (0u32..50).prop_map(FileId);
    prop_oneof![
        (file.clone(), prop_oneof![
            Just(OpenMode::Read),
            Just(OpenMode::Write),
            Just(OpenMode::ReadWrite)
        ])
            .prop_map(|(file, mode)| OpKind::Open { file, mode }),
        file.clone().prop_map(|file| OpKind::Close { file }),
        (file.clone(), 0u64..1_000_000, 1u64..100_000)
            .prop_map(|(file, o, l)| OpKind::Read { file, range: ByteRange::at(o, l) }),
        (file.clone(), 0u64..1_000_000, 1u64..100_000)
            .prop_map(|(file, o, l)| OpKind::Write { file, range: ByteRange::at(o, l) }),
        (file.clone(), 0u64..1_000_000)
            .prop_map(|(file, n)| OpKind::Truncate { file, new_len: n }),
        file.clone().prop_map(|file| OpKind::Delete { file }),
        file.prop_map(|file| OpKind::Fsync { file }),
        (0u32..8, 0u32..8, proptest::collection::vec(0u32..50, 0..5)).prop_map(
            |(pid, to, files)| OpKind::Migrate {
                pid: ProcessId(pid),
                to: ClientId(to),
                files: files.into_iter().map(FileId).collect(),
            }
        ),
    ]
}

fn arb_stream() -> impl Strategy<Value = OpStream> {
    proptest::collection::vec((0u64..1_000_000u64, 0u32..8, arb_kind()), 0..60).prop_map(|raw| {
        raw.into_iter()
            .map(|(t, c, kind)| Op { time: SimTime::from_micros(t), client: ClientId(c), kind })
            .collect()
    })
}

proptest! {
    #[test]
    fn render_parse_round_trips(stream in arb_stream()) {
        let text = render_ops(&stream);
        let parsed = parse_ops(&text).expect("rendered output must parse");
        prop_assert_eq!(parsed, stream);
    }

    #[test]
    fn rendered_text_is_line_per_op(stream in arb_stream()) {
        let text = render_ops(&stream);
        // Header comment plus one line per op.
        prop_assert_eq!(text.lines().count(), stream.len() + 1);
    }

    #[test]
    fn parser_never_panics_on_noise(noise in "[ -~\n]{0,200}") {
        // Totality: arbitrary printable input either parses or errors.
        let _ = parse_ops(&noise);
    }
}
