//! A capacity-bounded NVRAM device with access accounting.
//!
//! §2.6 of the paper compares the cache models on "the amount of traffic
//! they generate on the memory bus and the number of accesses they generate
//! to the NVRAM" — the unified model makes 2–2.5× as many NVRAM accesses as
//! write-aside, which matters if NVRAM is slower than DRAM. This device
//! model carries the counters those comparisons need.

use crate::battery::BatteryBank;

/// A client- or server-side NVRAM component.
///
/// The device does not store payloads (the simulators track cache contents
/// themselves); it tracks capacity, access counts, and battery health.
///
/// # Examples
///
/// ```
/// use nvfs_nvram::NvramDevice;
///
/// let mut nv = NvramDevice::new(1 << 20);
/// nv.record_write(4096);
/// nv.record_read(4096);
/// assert_eq!(nv.accesses(), 2);
/// assert_eq!(nv.bytes_transferred(), 8192);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NvramDevice {
    capacity: u64,
    batteries: BatteryBank,
    /// Access time relative to DRAM, in tenths (10 = parity, 15 = 1.5×).
    access_time_tenths: u32,
    reads: u64,
    writes: u64,
    read_bytes: u64,
    write_bytes: u64,
}

impl NvramDevice {
    /// Creates a device with `capacity` bytes, triply redundant batteries,
    /// and DRAM-parity access time.
    pub fn new(capacity: u64) -> Self {
        NvramDevice {
            capacity,
            batteries: BatteryBank::default(),
            access_time_tenths: 10,
            reads: 0,
            writes: 0,
            read_bytes: 0,
            write_bytes: 0,
        }
    }

    /// Sets the access-time ratio relative to DRAM (e.g. `1.5` for 50%
    /// slower). Returns `self` for builder-style chaining.
    ///
    /// # Panics
    ///
    /// Panics if `ratio < 1.0` (NVRAM is never faster than DRAM here).
    pub fn with_access_ratio(mut self, ratio: f64) -> Self {
        assert!(ratio >= 1.0, "NVRAM access ratio must be >= 1.0");
        self.access_time_tenths = (ratio * 10.0).round() as u32;
        self
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Battery bank (mutable, so failures can be injected).
    pub fn batteries_mut(&mut self) -> &mut BatteryBank {
        &mut self.batteries
    }

    /// Battery bank.
    pub fn batteries(&self) -> &BatteryBank {
        &self.batteries
    }

    /// Access-time ratio relative to DRAM.
    pub fn access_ratio(&self) -> f64 {
        self.access_time_tenths as f64 / 10.0
    }

    /// Records a read access of `bytes`.
    pub fn record_read(&mut self, bytes: u64) {
        self.reads += 1;
        self.read_bytes += bytes;
    }

    /// Records a write access of `bytes`.
    pub fn record_write(&mut self, bytes: u64) {
        self.writes += 1;
        self.write_bytes += bytes;
    }

    /// Total accesses (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Read accesses.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Write accesses.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Total bytes moved through the device.
    pub fn bytes_transferred(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }

    /// Relative time spent on NVRAM accesses compared to making the same
    /// accesses to DRAM (1.0 = parity).
    pub fn relative_access_cost(&self) -> f64 {
        self.access_ratio()
    }

    /// Clears the access counters (capacity and batteries unchanged).
    pub fn reset_counters(&mut self) {
        self.reads = 0;
        self.writes = 0;
        self.read_bytes = 0;
        self.write_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let mut nv = NvramDevice::new(1024);
        nv.record_write(100);
        nv.record_write(200);
        nv.record_read(50);
        assert_eq!(nv.writes(), 2);
        assert_eq!(nv.reads(), 1);
        assert_eq!(nv.bytes_transferred(), 350);
        nv.reset_counters();
        assert_eq!(nv.accesses(), 0);
        assert_eq!(nv.capacity(), 1024);
    }

    #[test]
    fn access_ratio_round_trips() {
        let nv = NvramDevice::new(1024).with_access_ratio(1.5);
        assert_eq!(nv.access_ratio(), 1.5);
        assert_eq!(NvramDevice::new(1).access_ratio(), 1.0);
    }

    #[test]
    #[should_panic(expected = ">= 1.0")]
    fn sub_unity_ratio_rejected() {
        let _ = NvramDevice::new(1024).with_access_ratio(0.5);
    }

    #[test]
    fn battery_failures_reachable() {
        let mut nv = NvramDevice::new(1024);
        nv.batteries_mut().fail_one();
        assert!(nv.batteries().preserves_data());
    }
}
