//! The Table 1 cost catalogue and §2.7 cost-effectiveness arithmetic.
//!
//! Table 1 of the paper lists 1992 list prices (lots of 5000+) for
//! non-volatile memory components from Dallas Semiconductor, NVRAM boards,
//! and a volatile DRAM part for comparison. The paper's §2.7 conclusion —
//! NVRAM is worth buying once the volatile cache is already large — is pure
//! arithmetic over these prices and the simulated traffic reductions, so we
//! carry the catalogue as data.

use std::fmt;

/// What kind of memory product a catalogue row describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryKind {
    /// Battery-backed SRAM SIMM.
    NvramSimm,
    /// NVRAM board (batteries amortized over more megabytes).
    NvramBoard,
    /// Ordinary volatile DRAM.
    Dram,
}

impl fmt::Display for MemoryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemoryKind::NvramSimm => "NVRAM SIMM",
            MemoryKind::NvramBoard => "NVRAM board",
            MemoryKind::Dram => "DRAM",
        };
        f.write_str(s)
    }
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryProduct {
    /// Component description (as printed in Table 1).
    pub component: &'static str,
    /// Product kind.
    pub kind: MemoryKind,
    /// Access speed in nanoseconds.
    pub speed_ns: u32,
    /// Number of lithium batteries on the part (0 for DRAM).
    pub lithium_batteries: u8,
    /// Amortized price per megabyte in 1992 dollars.
    pub price_per_mb: f64,
    /// Minimum purchasable configuration in megabytes.
    pub min_config_mb: f64,
}

impl MemoryProduct {
    /// Price of a configuration of `mb` megabytes (at least the minimum
    /// configuration is always purchased).
    pub fn price_for(&self, mb: f64) -> f64 {
        self.price_per_mb * mb.max(self.min_config_mb)
    }
}

/// The NVRAM rows of Table 1.
///
/// # Examples
///
/// ```
/// use nvfs_nvram::cost::nvram_catalogue;
///
/// let rows = nvram_catalogue();
/// assert_eq!(rows.len(), 7);
/// assert!(rows.iter().all(|r| r.lithium_batteries >= 1));
/// ```
pub fn nvram_catalogue() -> Vec<MemoryProduct> {
    vec![
        MemoryProduct {
            component: "128K*9 SRAM SIMM (120ns)",
            kind: MemoryKind::NvramSimm,
            speed_ns: 120,
            lithium_batteries: 2,
            price_per_mb: 328.0,
            min_config_mb: 0.5,
        },
        MemoryProduct {
            component: "1M*1 SRAM SIMM (85ns)",
            kind: MemoryKind::NvramSimm,
            speed_ns: 85,
            lithium_batteries: 2,
            price_per_mb: 336.0,
            min_config_mb: 32.0,
        },
        MemoryProduct {
            component: "512K*8 RAM SIMM (70ns)",
            kind: MemoryKind::NvramSimm,
            speed_ns: 70,
            lithium_batteries: 1,
            price_per_mb: 370.0,
            min_config_mb: 2.0,
        },
        MemoryProduct {
            component: "PC-AT bus board, 1 MB",
            kind: MemoryKind::NvramBoard,
            speed_ns: 70,
            lithium_batteries: 3,
            price_per_mb: 439.0,
            min_config_mb: 1.0,
        },
        MemoryProduct {
            component: "PC-AT bus board, 16 MB",
            kind: MemoryKind::NvramBoard,
            speed_ns: 70,
            lithium_batteries: 3,
            price_per_mb: 134.0,
            min_config_mb: 16.0,
        },
        MemoryProduct {
            component: "VME bus board, 1 MB",
            kind: MemoryKind::NvramBoard,
            speed_ns: 70,
            lithium_batteries: 3,
            price_per_mb: 634.0,
            min_config_mb: 1.0,
        },
        MemoryProduct {
            component: "VME bus board, 16 MB",
            kind: MemoryKind::NvramBoard,
            speed_ns: 70,
            lithium_batteries: 3,
            price_per_mb: 147.0,
            min_config_mb: 16.0,
        },
    ]
}

/// The volatile comparison row of Table 1: 1M*9 DRAM at 70 ns, $33/MB.
pub fn dram() -> MemoryProduct {
    MemoryProduct {
        component: "1M*9 DRAM (70ns)",
        kind: MemoryKind::Dram,
        speed_ns: 70,
        lithium_batteries: 0,
        price_per_mb: 33.0,
        min_config_mb: 4.0,
    }
}

/// Cheapest NVRAM product (by total price) for a configuration of `mb`
/// megabytes.
///
/// # Examples
///
/// ```
/// use nvfs_nvram::cost::cheapest_nvram_for;
///
/// // At 16 MB the boards beat the SIMMs by a wide margin.
/// let best = cheapest_nvram_for(16.0);
/// assert!(best.component.contains("16 MB"));
/// ```
pub fn cheapest_nvram_for(mb: f64) -> MemoryProduct {
    nvram_catalogue()
        .into_iter()
        .min_by(|a, b| a.price_for(mb).total_cmp(&b.price_for(mb)))
        .expect("catalogue is non-empty")
}

/// Approximate minimum cost of an uninterruptible power supply able to hold
/// up a workstation for one to two hours (the paper's UPS comparison).
pub const UPS_MIN_PRICE: f64 = 800.0;

/// Ratio of the cheapest suitable NVRAM's per-megabyte price to DRAM's
/// per-megabyte price at a given configuration size; the paper's rule of
/// thumb is "four to six times" (large boards amortize down to ~4×).
///
/// # Examples
///
/// ```
/// use nvfs_nvram::cost::nvram_to_dram_ratio;
///
/// let r = nvram_to_dram_ratio(16.0);
/// assert!(r >= 3.5 && r <= 6.5, "ratio was {r}");
/// ```
pub fn nvram_to_dram_ratio(mb: f64) -> f64 {
    let nv = cheapest_nvram_for(mb);
    nv.price_per_mb / dram().price_per_mb
}

/// §2.7 decision rule: given the marginal traffic reduction per NVRAM
/// megabyte and per DRAM megabyte (both as fractions of total traffic),
/// returns `true` when spending on NVRAM buys more reduction per dollar.
///
/// # Examples
///
/// ```
/// use nvfs_nvram::cost::nvram_wins;
///
/// // With 16 MB of volatile cache, ½ MB of NVRAM matched 6 MB of DRAM in
/// // the paper: NVRAM reduction per MB is 12× DRAM's, far above the ≈4–6×
/// // price ratio, so NVRAM wins.
/// assert!(nvram_wins(0.12, 0.01, 1.0));
/// // With only 8 MB volatile, the paper found NVRAM roughly 2× as
/// // effective per MB — below the price ratio, so DRAM wins.
/// assert!(!nvram_wins(0.02, 0.01, 1.0));
/// ```
pub fn nvram_wins(nvram_reduction_per_mb: f64, dram_reduction_per_mb: f64, mb: f64) -> bool {
    let nv_price = cheapest_nvram_for(mb).price_per_mb;
    let d_price = dram().price_per_mb;
    nvram_reduction_per_mb / nv_price > dram_reduction_per_mb / d_price
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_matches_table_1() {
        let rows = nvram_catalogue();
        // Spot-check the printed prices.
        assert_eq!(rows[0].price_per_mb, 328.0);
        assert_eq!(rows[4].price_per_mb, 134.0);
        assert_eq!(rows[6].price_per_mb, 147.0);
        assert_eq!(dram().price_per_mb, 33.0);
    }

    #[test]
    fn sixteen_mb_boards_beat_simms() {
        // Paper: "the 16-megabyte boards are nearly 60% less expensive than
        // SIMMs and only four times the cost of an equivalent amount of
        // DRAM."
        let board = cheapest_nvram_for(16.0);
        assert_eq!(board.kind, MemoryKind::NvramBoard);
        let cheapest_simm_price = nvram_catalogue()
            .iter()
            .filter(|r| r.kind == MemoryKind::NvramSimm)
            .map(|r| r.price_for(16.0))
            .fold(f64::INFINITY, f64::min);
        let saving = 1.0 - board.price_for(16.0) / cheapest_simm_price;
        assert!(saving > 0.5, "board saving over SIMMs was {saving:.2}");
        let ratio = nvram_to_dram_ratio(16.0);
        assert!((3.5..=4.5).contains(&ratio), "ratio to DRAM was {ratio:.2}");
    }

    #[test]
    fn one_mb_boards_cost_more_than_simms() {
        // Paper: "For one-megabyte boards, the boards are 20 - 70% more
        // expensive than SIMMs depending on the bus."
        let simm = &nvram_catalogue()[0]; // 128K*9 at $328/MB, 0.5 MB min
        for board in nvram_catalogue().iter().filter(|r| r.min_config_mb == 1.0) {
            let premium = board.price_for(1.0) / simm.price_for(1.0) - 1.0;
            assert!((0.15..=0.95).contains(&premium), "premium was {premium:.2}");
        }
    }

    #[test]
    fn price_for_respects_minimum_configuration() {
        let simm = &nvram_catalogue()[1]; // 32 MB minimum.
        assert_eq!(simm.price_for(1.0), simm.price_for(32.0));
        assert!(simm.price_for(64.0) > simm.price_for(32.0));
    }

    #[test]
    fn ups_is_pricier_than_small_nvram() {
        // A 1 MB NVRAM board is cheaper than the cheapest UPS.
        let board = cheapest_nvram_for(1.0);
        assert!(board.price_for(1.0) < UPS_MIN_PRICE);
    }

    #[test]
    fn kind_display_is_nonempty() {
        assert_eq!(MemoryKind::Dram.to_string(), "DRAM");
        assert_eq!(MemoryKind::NvramSimm.to_string(), "NVRAM SIMM");
        assert_eq!(MemoryKind::NvramBoard.to_string(), "NVRAM board");
    }
}
