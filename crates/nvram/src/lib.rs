//! NVRAM hardware models: device, batteries, crash recovery, and costs.
//!
//! The paper treats NVRAM as "RAM with battery backup" whose essential
//! properties are (a) it survives machine failures, (b) it may be slower
//! than DRAM, (c) it costs several times more per megabyte (Table 1), and
//! (d) a board can be moved to another machine to recover its contents
//! after a client crash (§4). This crate models exactly those properties:
//!
//! * [`device`] — a capacity-bounded device with access counters and an
//!   access-time ratio relative to DRAM;
//! * [`battery`] — the battery bank state machine (the Table 1 components
//!   carry one to three lithium batteries with failover);
//! * [`board`] — a removable board holding dirty byte ranges, with the
//!   crash → move → recover flow of §4;
//! * [`cost`] — the Table 1 price catalogue and the cost-effectiveness
//!   arithmetic of §2.7;
//! * [`protect`] — write-protection modes and per-block FNV checksums:
//!   the §2.3 defense against stray kernel writes and media decay, with
//!   protect-window timing charged at Table 1 access rates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod board;
pub mod cost;
pub mod device;
pub mod protect;

pub use battery::{survival_probability, BatteryBank, BatteryState};
pub use board::{NvramBoard, RecoveredData};
pub use cost::{dram, nvram_catalogue, MemoryKind, MemoryProduct};
pub use device::NvramDevice;
pub use protect::{block_checksum, corruption_mask, ChecksumStore, ProtectionMode};
