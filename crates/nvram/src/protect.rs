//! NVRAM write-protection modes and per-block FNV checksums.
//!
//! The paper weighs write-protecting the NVRAM cache against its
//! access-cost penalty (§2.3): battery-backed RAM survives power loss,
//! but a stray kernel write or media decay corrupts it as easily as any
//! other RAM. This module supplies the two defensive levers and their
//! Table-1 cost arithmetic:
//!
//! * [`ProtectionMode`] — how aggressively the cache defends itself:
//!   `Unprotected` (fast, blind), `WriteProtected` (the board is kept
//!   read-only except inside a short window around each legitimate
//!   write, shrinking the stray-write vulnerability to open windows
//!   only), and `Verified` (per-block checksums are recomputed on every
//!   read-back and recovery drain, so corrupt data is *detected* before
//!   it can masquerade as good).
//! * [`ChecksumStore`] — the per-block FNV-1a checksum table. The
//!   checksum of a block is [`block_checksum`]`(file, block, generation)`
//!   computed with the same [`Fnv64`] that frames the WAL; corruption is
//!   modelled as an XOR mask on the *data* side ([`corruption_mask`]),
//!   so a damaged block's recomputed checksum no longer matches the
//!   stored one and [`ChecksumStore::mismatched`] finds it.
//!
//! Costs use the Table-1 arithmetic established for the WAL study:
//! byte-counted NVRAM work at [`NVRAM_NS_PER_BYTE`]. Toggling the
//! board's protection register costs [`PROTECT_TOGGLE_BYTES`] each way.

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

use nvfs_types::framing::Fnv64;
use nvfs_types::{FileId, BLOCK_SIZE};

/// NVRAM access cost per byte, Table-1 arithmetic (40 MB/s ⇒ 25 ns/B).
pub const NVRAM_NS_PER_BYTE: u64 = 25;

/// Bytes of register traffic per protect/unprotect toggle (one control
/// word each way).
pub const PROTECT_TOGGLE_BYTES: u64 = 8;

/// How the NVRAM cache defends itself against stray writes and decay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum ProtectionMode {
    /// No defense: every corruption lands, none is detected outside the
    /// background scrub.
    #[default]
    Unprotected,
    /// The board is write-protected except inside a short window after
    /// each legitimate write ([`protect_window_micros`]); stray writes
    /// outside open windows bounce off the protection hardware.
    /// Bit flips and decay are physical and bypass protection.
    WriteProtected,
    /// Per-block checksums are verified on every read-back and recovery
    /// drain: corruption still lands, but is always *detected* before
    /// the damaged bytes can pass as good data.
    Verified,
}

impl ProtectionMode {
    /// Every mode, cheapest first.
    pub const ALL: [ProtectionMode; 3] = [
        ProtectionMode::Unprotected,
        ProtectionMode::WriteProtected,
        ProtectionMode::Verified,
    ];

    /// Short static label for reports and events.
    pub fn label(&self) -> &'static str {
        match self {
            ProtectionMode::Unprotected => "unprotected",
            ProtectionMode::WriteProtected => "write-protect",
            ProtectionMode::Verified => "verified",
        }
    }

    /// Whether read-back/drain checksum verification is on.
    pub fn verifies_reads(&self) -> bool {
        matches!(self, ProtectionMode::Verified)
    }

    /// Whether stray writes outside an open window bounce.
    pub fn bounces_stray_writes(&self) -> bool {
        matches!(self, ProtectionMode::WriteProtected)
    }
}

impl fmt::Display for ProtectionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for ProtectionMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "unprotected" => Ok(ProtectionMode::Unprotected),
            "write-protect" => Ok(ProtectionMode::WriteProtected),
            "verified" => Ok(ProtectionMode::Verified),
            other => Err(format!(
                "unknown protection mode {other:?} (unprotected|write-protect|verified)"
            )),
        }
    }
}

/// Length of the open (writable) window after a legitimate write under
/// [`ProtectionMode::WriteProtected`]: unprotect, write one block,
/// re-protect, all at Table-1 byte rates, rounded up to a microsecond.
pub const fn protect_window_micros() -> u64 {
    ((2 * PROTECT_TOGGLE_BYTES + BLOCK_SIZE) * NVRAM_NS_PER_BYTE).div_ceil(1000)
}

/// Protect/unprotect toggle overhead for `nvram_writes` block writes:
/// two register touches per write at byte rates.
pub const fn write_protect_overhead_ns(nvram_writes: u64) -> u64 {
    nvram_writes * 2 * PROTECT_TOGGLE_BYTES * NVRAM_NS_PER_BYTE
}

/// Checksum-verification overhead for `verified_bytes` of read-back
/// traffic: every verified byte is touched once more by the hasher.
pub const fn verify_overhead_ns(verified_bytes: u64) -> u64 {
    verified_bytes * NVRAM_NS_PER_BYTE
}

/// Background-scrub overhead for `blocks_scanned` whole-block reads.
pub const fn scrub_overhead_ns(blocks_scanned: u64) -> u64 {
    blocks_scanned * BLOCK_SIZE * NVRAM_NS_PER_BYTE
}

/// The checksum stored alongside a block: FNV-1a over the file id, the
/// block number and the write generation (all little-endian), produced
/// by the same hasher that frames the WAL.
pub fn block_checksum(file: FileId, block: u64, generation: u64) -> u64 {
    let mut h = Fnv64::new();
    h.update_bytes(&u64::from(file.0).to_le_bytes());
    h.update_bytes(&block.to_le_bytes());
    h.update_bytes(&generation.to_le_bytes());
    h.value()
}

/// The data-side damage mask of one corruption event: FNV-1a of the
/// event sequence number, forced odd so no event masks to zero and two
/// distinct events cannot cancel to a clean block by accident.
pub fn corruption_mask(event_seq: u64) -> u64 {
    let mut h = Fnv64::new();
    h.update_bytes(&event_seq.to_le_bytes());
    h.value() | 1
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlockSum {
    /// Write generation the stored checksum was computed at.
    generation: u64,
    /// Checksum written with the block.
    stored: u64,
    /// Checksum of the block's *current* contents; diverges from
    /// `stored` when corruption lands.
    current: u64,
}

/// Per-block FNV checksum table for one client's NVRAM-resident dirty
/// blocks. A block is *mismatched* when the checksum of its current
/// contents no longer equals the stored one — the condition the
/// background scrub and the `Verified` read-back path test.
///
/// # Examples
///
/// ```
/// use nvfs_nvram::protect::ChecksumStore;
/// use nvfs_types::FileId;
///
/// let mut sums = ChecksumStore::new();
/// sums.note_write(FileId(1), 0);
/// assert!(sums.verify(FileId(1), 0));
/// sums.corrupt(FileId(1), 0, 7);
/// assert!(!sums.verify(FileId(1), 0));
/// assert_eq!(sums.mismatched(), vec![(FileId(1), 0)]);
/// sums.repair(FileId(1), 0);
/// assert!(sums.verify(FileId(1), 0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChecksumStore {
    blocks: BTreeMap<(FileId, u64), BlockSum>,
}

impl ChecksumStore {
    /// An empty store.
    pub fn new() -> Self {
        ChecksumStore::default()
    }

    /// Number of tracked blocks.
    pub fn tracked(&self) -> usize {
        self.blocks.len()
    }

    /// Whether no blocks are tracked.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Records a legitimate write of `(file, block)`: the generation
    /// advances and the stored checksum is refreshed from the new
    /// contents, so an overwrite heals any earlier damage.
    pub fn note_write(&mut self, file: FileId, block: u64) {
        let entry = self
            .blocks
            .entry((file, block))
            .or_insert_with(|| BlockSum {
                generation: 0,
                stored: block_checksum(file, block, 0),
                current: block_checksum(file, block, 0),
            });
        entry.generation += 1;
        entry.stored = block_checksum(file, block, entry.generation);
        entry.current = entry.stored;
    }

    /// Applies corruption event `event_seq` to `(file, block)`: the
    /// block's contents change, so the checksum of its current data
    /// diverges from the stored one. Untracked blocks are first
    /// registered at generation zero.
    pub fn corrupt(&mut self, file: FileId, block: u64, event_seq: u64) {
        let entry = self
            .blocks
            .entry((file, block))
            .or_insert_with(|| BlockSum {
                generation: 0,
                stored: block_checksum(file, block, 0),
                current: block_checksum(file, block, 0),
            });
        entry.current ^= corruption_mask(event_seq);
    }

    /// Whether `(file, block)`'s current contents still match the
    /// stored checksum. Untracked blocks verify clean.
    pub fn verify(&self, file: FileId, block: u64) -> bool {
        self.blocks
            .get(&(file, block))
            .is_none_or(|b| b.current == b.stored)
    }

    /// Every mismatched block, in `(file, block)` order.
    pub fn mismatched(&self) -> Vec<(FileId, u64)> {
        self.blocks
            .iter()
            .filter(|(_, b)| b.current != b.stored)
            .map(|(&k, _)| k)
            .collect()
    }

    /// Restores `(file, block)` to a matching checksum (a scrub repair
    /// or an honest discard of detected-corrupt contents).
    pub fn repair(&mut self, file: FileId, block: u64) {
        if let Some(b) = self.blocks.get_mut(&(file, block)) {
            b.current = b.stored;
        }
    }

    /// Drops `(file, block)` (the block left NVRAM).
    pub fn forget(&mut self, file: FileId, block: u64) {
        self.blocks.remove(&(file, block));
    }

    /// Drops every block of `file` (delete, recall, or drain).
    pub fn forget_file(&mut self, file: FileId) {
        self.blocks.retain(|&(f, _), _| f != file);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_labels_round_trip() {
        for mode in ProtectionMode::ALL {
            assert_eq!(mode.label().parse::<ProtectionMode>(), Ok(mode));
            assert_eq!(mode.to_string(), mode.label());
        }
        assert_eq!(ProtectionMode::default(), ProtectionMode::Unprotected);
        let err = "armored".parse::<ProtectionMode>().unwrap_err();
        assert!(err.contains("unprotected|write-protect|verified"), "{err}");
    }

    #[test]
    fn mode_capabilities_partition_the_lattice() {
        assert!(!ProtectionMode::Unprotected.bounces_stray_writes());
        assert!(!ProtectionMode::Unprotected.verifies_reads());
        assert!(ProtectionMode::WriteProtected.bounces_stray_writes());
        assert!(!ProtectionMode::WriteProtected.verifies_reads());
        assert!(!ProtectionMode::Verified.bounces_stray_writes());
        assert!(ProtectionMode::Verified.verifies_reads());
    }

    #[test]
    fn cost_arithmetic_matches_table_one() {
        // (2 toggles × 8 B + one 4 KB block) × 25 ns = 102.8 µs → 103 µs.
        assert_eq!(protect_window_micros(), 103);
        assert_eq!(write_protect_overhead_ns(1), 400);
        assert_eq!(verify_overhead_ns(BLOCK_SIZE), 102_400);
        assert_eq!(scrub_overhead_ns(1), BLOCK_SIZE * NVRAM_NS_PER_BYTE);
    }

    #[test]
    fn overwrite_heals_a_corrupt_block() {
        let mut sums = ChecksumStore::new();
        sums.note_write(FileId(3), 2);
        sums.corrupt(FileId(3), 2, 1);
        assert!(!sums.verify(FileId(3), 2));
        sums.note_write(FileId(3), 2);
        assert!(sums.verify(FileId(3), 2), "fresh data, fresh checksum");
        assert!(sums.mismatched().is_empty());
    }

    #[test]
    fn distinct_events_never_cancel_to_clean() {
        let mut sums = ChecksumStore::new();
        sums.note_write(FileId(0), 0);
        sums.corrupt(FileId(0), 0, 10);
        sums.corrupt(FileId(0), 0, 11);
        assert!(
            !sums.verify(FileId(0), 0),
            "two different masks must not cancel"
        );
        // The same event twice *does* cancel — which is why event
        // sequence numbers are unique per schedule.
        sums.corrupt(FileId(0), 0, 11);
        sums.corrupt(FileId(0), 0, 10);
        assert!(sums.verify(FileId(0), 0));
    }

    #[test]
    fn masks_are_odd_and_checksums_are_fnv() {
        for seq in 0..64 {
            assert_eq!(corruption_mask(seq) & 1, 1, "mask for {seq} is even");
        }
        // Pin the checksum to the shared FNV implementation.
        let mut h = Fnv64::new();
        h.update_bytes(&7u64.to_le_bytes());
        h.update_bytes(&3u64.to_le_bytes());
        h.update_bytes(&1u64.to_le_bytes());
        assert_eq!(block_checksum(FileId(7), 3, 1), h.value());
    }

    #[test]
    fn forget_drops_tracking() {
        let mut sums = ChecksumStore::new();
        sums.note_write(FileId(1), 0);
        sums.note_write(FileId(1), 1);
        sums.note_write(FileId(2), 0);
        sums.corrupt(FileId(1), 1, 5);
        sums.forget(FileId(1), 1);
        assert!(sums.verify(FileId(1), 1), "untracked blocks verify clean");
        sums.forget_file(FileId(1));
        assert_eq!(sums.tracked(), 1);
        assert!(!sums.is_empty());
        sums.forget_file(FileId(2));
        assert!(sums.is_empty());
    }

    #[test]
    fn corrupting_an_untracked_block_registers_it() {
        let mut sums = ChecksumStore::new();
        sums.corrupt(FileId(9), 4, 2);
        assert_eq!(sums.tracked(), 1);
        assert!(!sums.verify(FileId(9), 4));
        sums.repair(FileId(9), 4);
        assert!(sums.verify(FileId(9), 4));
    }
}
