//! Removable NVRAM boards and §4 crash recovery.
//!
//! §4 of the paper: "modified data may become unavailable if it resides in
//! an NVRAM cache on a crashed client. To avoid this problem for clients
//! that do not recover quickly, it must be possible to move an NVRAM
//! component to another client and retrieve its data from the new
//! location." [`NvramBoard`] holds the dirty byte ranges a client cache had
//! in NVRAM at crash time; moving the board and draining it recovers every
//! byte.

use std::collections::BTreeMap;

use nvfs_types::{ByteRange, ClientId, FileId, RangeSet, BLOCK_SIZE};

use crate::battery::BatteryBank;

/// Dirty data recovered from a moved board, per file.
pub type RecoveredData = BTreeMap<FileId, RangeSet>;

/// A physically removable NVRAM component holding dirty file data.
///
/// # Examples
///
/// ```
/// use nvfs_nvram::NvramBoard;
/// use nvfs_types::{ByteRange, ClientId, FileId};
///
/// let mut board = NvramBoard::new(ClientId(0), 1 << 20);
/// board.store(FileId(1), ByteRange::new(0, 4096));
/// // The host crashes; the board is moved to another client…
/// board.move_to(ClientId(5));
/// let recovered = board.drain();
/// assert_eq!(recovered[&FileId(1)].len_bytes(), 4096);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NvramBoard {
    host: ClientId,
    capacity: u64,
    batteries: BatteryBank,
    contents: BTreeMap<FileId, RangeSet>,
}

impl NvramBoard {
    /// Creates an empty board installed in `host`.
    pub fn new(host: ClientId, capacity: u64) -> Self {
        NvramBoard {
            host,
            capacity,
            batteries: BatteryBank::default(),
            contents: BTreeMap::new(),
        }
    }

    /// Replaces the battery bank, e.g. to model the cheaper one- and
    /// two-battery parts of Table 1 (builder style).
    pub fn with_batteries(mut self, count: u8) -> Self {
        self.batteries = BatteryBank::new(count);
        self
    }

    /// The client the board is currently installed in.
    pub fn host(&self) -> ClientId {
        self.host
    }

    /// Battery bank (read-only).
    pub fn batteries(&self) -> &BatteryBank {
        &self.batteries
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Battery bank (mutable, for failure injection).
    pub fn batteries_mut(&mut self) -> &mut BatteryBank {
        &mut self.batteries
    }

    /// Total dirty bytes currently held.
    pub fn dirty_bytes(&self) -> u64 {
        self.contents.values().map(RangeSet::len_bytes).sum()
    }

    /// Records `range` of `file` as dirty in the board. Returns the number
    /// of newly dirty bytes.
    pub fn store(&mut self, file: FileId, range: ByteRange) -> u64 {
        self.contents.entry(file).or_default().insert(range)
    }

    /// Marks `range` of `file` clean (written back or dead). Returns the
    /// number of bytes cleaned.
    pub fn clean(&mut self, file: FileId, range: ByteRange) -> u64 {
        match self.contents.get_mut(&file) {
            Some(set) => {
                let removed = set.remove(range);
                if set.is_empty() {
                    self.contents.remove(&file);
                }
                removed
            }
            None => 0,
        }
    }

    /// Drops every dirty byte of `file` (the file was deleted).
    pub fn forget_file(&mut self, file: FileId) -> u64 {
        self.contents.remove(&file).map_or(0, |s| s.len_bytes())
    }

    /// Simulates physically moving the board into `new_host`. Contents are
    /// untouched: this is the whole point of battery-backed boards.
    pub fn move_to(&mut self, new_host: ClientId) {
        self.host = new_host;
    }

    /// Removes and returns every dirty range, e.g. to flush to the server
    /// during recovery. Afterwards the board is empty.
    ///
    /// If all batteries are dead the contents were lost: an empty map is
    /// returned.
    pub fn drain(&mut self) -> RecoveredData {
        if !self.batteries.preserves_data() {
            self.contents.clear();
            return RecoveredData::new();
        }
        std::mem::take(&mut self.contents)
    }

    /// Dirty ranges currently held for `file`.
    pub fn dirty_of(&self, file: FileId) -> Option<&RangeSet> {
        self.contents.get(&file)
    }

    /// Drains at most `max_bytes`, modelling a torn (cut short) recovery
    /// drain. Returns `(recovered, lost)`: the ranges that made it out and
    /// the byte count that did not. Afterwards the board is empty — a
    /// truncated drain does not leave a retryable remainder, it is exactly
    /// the partial-application failure §4's recovery flow has to report.
    ///
    /// The cut is made **at 4 KB block boundaries**, never mid-block: a
    /// range is either taken whole (when the remaining budget covers it) or
    /// cut at the largest block-grid offset the budget reaches — so
    /// `recovered + lost` never splits a single write record's accounting
    /// and the drain prefix is exactly what the durability oracle predicts.
    /// Once a range cannot be taken whole the drain stops: a torn drain is
    /// a prefix, not a sieve.
    ///
    /// Dead batteries lose everything, as with [`drain`](NvramBoard::drain).
    pub fn drain_up_to(&mut self, max_bytes: u64) -> (RecoveredData, u64) {
        let held = self.dirty_bytes();
        if !self.batteries.preserves_data() {
            self.contents.clear();
            return (RecoveredData::new(), held);
        }
        let mut recovered = RecoveredData::new();
        let mut budget = max_bytes;
        'files: for (file, set) in std::mem::take(&mut self.contents) {
            if budget == 0 {
                continue;
            }
            let mut kept = RangeSet::new();
            for range in set.iter() {
                let take = block_aligned_take(range, budget);
                if take > 0 {
                    kept.insert(ByteRange::at(range.start, take));
                    budget -= take;
                }
                if take < range.len() {
                    // The budget ran out mid-range: the cut ends the drain.
                    if !kept.is_empty() {
                        recovered.insert(file, kept);
                    }
                    break 'files;
                }
            }
            if !kept.is_empty() {
                recovered.insert(file, kept);
            }
        }
        let out: u64 = recovered.values().map(RangeSet::len_bytes).sum();
        (recovered, held - out)
    }
}

/// How many bytes of `range` a torn drain with `budget` bytes left may
/// take: the whole range when the budget covers it, otherwise everything
/// up to the largest 4 KB block-grid offset the budget reaches (possibly
/// zero). Cutting on the grid keeps each write record's bytes together in
/// either the recovered or the lost column, never split across both.
fn block_aligned_take(range: ByteRange, budget: u64) -> u64 {
    if budget >= range.len() {
        return range.len();
    }
    let cut = ((range.start + budget) / BLOCK_SIZE) * BLOCK_SIZE;
    cut.saturating_sub(range.start)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_clean_round_trip() {
        let mut b = NvramBoard::new(ClientId(0), 1 << 20);
        assert_eq!(b.store(FileId(1), ByteRange::new(0, 100)), 100);
        assert_eq!(b.store(FileId(1), ByteRange::new(50, 150)), 50);
        assert_eq!(b.dirty_bytes(), 150);
        assert_eq!(b.clean(FileId(1), ByteRange::new(0, 150)), 150);
        assert_eq!(b.dirty_bytes(), 0);
        assert!(b.dirty_of(FileId(1)).is_none());
    }

    #[test]
    fn crash_move_recover_loses_nothing() {
        let mut b = NvramBoard::new(ClientId(2), 1 << 20);
        b.store(FileId(1), ByteRange::new(0, 4096));
        b.store(FileId(2), ByteRange::new(8192, 16384));
        let before = b.dirty_bytes();
        b.move_to(ClientId(7));
        assert_eq!(b.host(), ClientId(7));
        let rec = b.drain();
        let recovered: u64 = rec.values().map(RangeSet::len_bytes).sum();
        assert_eq!(recovered, before);
        assert_eq!(b.dirty_bytes(), 0);
    }

    #[test]
    fn dead_batteries_lose_contents() {
        let mut b = NvramBoard::new(ClientId(0), 1 << 20);
        b.store(FileId(1), ByteRange::new(0, 4096));
        for _ in 0..3 {
            b.batteries_mut().fail_one();
        }
        assert!(b.drain().is_empty());
    }

    #[test]
    fn truncated_drain_reports_the_lost_remainder() {
        let mut b = NvramBoard::new(ClientId(0), 1 << 20);
        b.store(FileId(1), ByteRange::new(0, 4096));
        b.store(FileId(2), ByteRange::new(0, 4096));
        // A 6000-byte budget covers file 1 whole but cannot cover any full
        // block of file 2: the cut lands on the block boundary, never
        // mid-block, so exactly one 4 KB record survives.
        let (recovered, lost) = b.drain_up_to(6000);
        let out: u64 = recovered.values().map(RangeSet::len_bytes).sum();
        assert_eq!(out, 4096);
        assert_eq!(lost, 4096);
        assert_eq!(b.dirty_bytes(), 0, "a torn drain leaves nothing behind");
    }

    #[test]
    fn truncated_drain_cuts_within_a_range_on_the_block_grid() {
        let mut b = NvramBoard::new(ClientId(0), 1 << 20);
        b.store(FileId(1), ByteRange::new(0, 3 * 4096));
        let (recovered, lost) = b.drain_up_to(2 * 4096 + 17);
        assert_eq!(recovered[&FileId(1)].len_bytes(), 2 * 4096);
        assert_eq!(lost, 4096);
    }

    #[test]
    fn truncated_drain_is_a_prefix_not_a_sieve() {
        let mut b = NvramBoard::new(ClientId(0), 1 << 20);
        // An unaligned first range the budget cannot finish must stop the
        // drain entirely: later files never leak past a torn cut.
        b.store(FileId(1), ByteRange::new(100, 100 + 2 * 4096));
        b.store(FileId(2), ByteRange::new(0, 4096));
        let (recovered, lost) = b.drain_up_to(4096 + 50);
        // Cut lands at offset 4096 on the block grid: 4096 - 100 bytes of
        // file 1 survive, nothing of file 2.
        assert_eq!(recovered[&FileId(1)].len_bytes(), 4096 - 100);
        assert!(!recovered.contains_key(&FileId(2)));
        assert_eq!(lost, (2 * 4096 + 4096) - (4096 - 100));
    }

    #[test]
    fn truncated_drain_with_dead_batteries_loses_everything() {
        let mut b = NvramBoard::new(ClientId(0), 1 << 20).with_batteries(1);
        b.store(FileId(1), ByteRange::new(0, 4096));
        b.batteries_mut().fail_one();
        assert!(!b.batteries().preserves_data());
        let (recovered, lost) = b.drain_up_to(u64::MAX);
        assert!(recovered.is_empty());
        assert_eq!(lost, 4096);
    }

    #[test]
    fn forget_file_drops_all_ranges() {
        let mut b = NvramBoard::new(ClientId(0), 1 << 20);
        b.store(FileId(3), ByteRange::new(0, 100));
        b.store(FileId(3), ByteRange::new(200, 300));
        assert_eq!(b.forget_file(FileId(3)), 200);
        assert_eq!(b.forget_file(FileId(3)), 0);
    }
}
