//! Battery bank state machine.
//!
//! Table 1's components carry one to three lithium batteries; "most of the
//! components have at least one extra battery in case the first battery
//! fails", and the boards use "triply redundant batteries". Data is safe as
//! long as at least one battery (or bus power) survives.

use std::fmt;

use nvfs_types::SimTime;

/// Health of the battery bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatteryState {
    /// All batteries healthy.
    Healthy,
    /// Some batteries failed but at least one survives; data is safe but
    /// the component should be serviced.
    Degraded,
    /// Every battery failed; contents are no longer non-volatile.
    Dead,
}

impl fmt::Display for BatteryState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BatteryState::Healthy => "healthy",
            BatteryState::Degraded => "degraded",
            BatteryState::Dead => "dead",
        };
        f.write_str(s)
    }
}

/// A bank of redundant lithium batteries backing an NVRAM component.
///
/// # Examples
///
/// ```
/// use nvfs_nvram::{BatteryBank, BatteryState};
///
/// let mut bank = BatteryBank::new(3);
/// assert_eq!(bank.state(), BatteryState::Healthy);
/// bank.fail_one();
/// bank.fail_one();
/// assert_eq!(bank.state(), BatteryState::Degraded);
/// assert!(bank.preserves_data());
/// bank.fail_one();
/// assert_eq!(bank.state(), BatteryState::Dead);
/// assert!(!bank.preserves_data());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatteryBank {
    total: u8,
    alive: u8,
    bus_powered: bool,
}

impl BatteryBank {
    /// Creates a bank of `count` healthy batteries.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero (a battery-less part is just DRAM).
    pub fn new(count: u8) -> Self {
        assert!(count > 0, "an NVRAM component needs at least one battery");
        BatteryBank {
            total: count,
            alive: count,
            bus_powered: false,
        }
    }

    /// Number of batteries installed.
    pub fn total(&self) -> u8 {
        self.total
    }

    /// Number of batteries still working.
    pub fn alive(&self) -> u8 {
        self.alive
    }

    /// Current health.
    pub fn state(&self) -> BatteryState {
        match self.alive {
            0 => BatteryState::Dead,
            a if a == self.total => BatteryState::Healthy,
            _ => BatteryState::Degraded,
        }
    }

    /// Whether the component currently draws bus power from a running host.
    pub fn bus_powered(&self) -> bool {
        self.bus_powered
    }

    /// Sets whether the component draws bus power. While the host machine
    /// runs, the memory is refreshed from the bus and data is safe even
    /// with every battery dead; batteries only matter once the host loses
    /// power (the Table 1 parts trickle-charge from the bus for exactly
    /// this reason).
    pub fn set_bus_power(&mut self, powered: bool) {
        self.bus_powered = powered;
    }

    /// Whether stored data would survive right now: at least one battery
    /// alive, or the host's bus still powering the part.
    pub fn preserves_data(&self) -> bool {
        self.alive > 0 || self.bus_powered
    }

    /// Fails one battery (no-op once the bank is dead). Returns the new
    /// state so callers can trigger servicing on the transition to
    /// [`BatteryState::Degraded`].
    pub fn fail_one(&mut self) -> BatteryState {
        self.alive = self.alive.saturating_sub(1);
        self.state()
    }

    /// Replaces every failed battery.
    pub fn service(&mut self) {
        self.alive = self.total;
    }

    /// Ages the bank against a failure clock: every entry of
    /// `failure_clock` (one absolute failure instant per installed cell,
    /// extra entries ignored) that is `<= now` has taken its cell with it.
    ///
    /// Idempotent, and never resurrects a cell that was already failed by
    /// [`fail_one`](BatteryBank::fail_one). Returns the resulting state so
    /// callers can react to the Healthy→Degraded→Dead transitions.
    pub fn age_to(&mut self, now: SimTime, failure_clock: &[SimTime]) -> BatteryState {
        let expired = failure_clock
            .iter()
            .take(self.total as usize)
            .filter(|&&t| t <= now)
            .count() as u8;
        self.alive = self.alive.min(self.total - expired);
        self.state()
    }
}

/// Probability that at least one of `batteries` independent cells is still
/// working after `years`, given a per-cell annual failure probability.
///
/// This is the arithmetic behind Table 1's redundancy choices: lithium
/// cells with a ~10-year life (annual failure ≈ 0.1) give a single-battery
/// SIMM ≈ 59% five-year survival, while a triply redundant board exceeds
/// 93%.
///
/// # Examples
///
/// ```
/// use nvfs_nvram::battery::survival_probability;
///
/// let single = survival_probability(1, 0.1, 5.0);
/// let triple = survival_probability(3, 0.1, 5.0);
/// assert!(triple > single);
/// assert!(triple > 0.9);
/// ```
///
/// # Panics
///
/// Panics if `batteries` is zero, or if `annual_failure` is outside
/// `[0, 1]`, or if `years` is negative.
pub fn survival_probability(batteries: u8, annual_failure: f64, years: f64) -> f64 {
    assert!(batteries > 0, "need at least one battery");
    assert!(
        (0.0..=1.0).contains(&annual_failure),
        "failure probability out of range"
    );
    assert!(years >= 0.0, "years must be non-negative");
    // Exponential cell lifetime with the given annual failure probability.
    let cell_survives = (1.0 - annual_failure).powf(years);
    1.0 - (1.0 - cell_survives).powi(batteries as i32)
}

impl Default for BatteryBank {
    /// A board-style triply redundant bank.
    fn default() -> Self {
        BatteryBank::new(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_battery_simm_dies_on_first_failure() {
        let mut bank = BatteryBank::new(1);
        assert_eq!(bank.fail_one(), BatteryState::Dead);
        assert!(!bank.preserves_data());
    }

    #[test]
    fn service_restores_full_health() {
        let mut bank = BatteryBank::new(2);
        bank.fail_one();
        assert_eq!(bank.state(), BatteryState::Degraded);
        bank.service();
        assert_eq!(bank.state(), BatteryState::Healthy);
        assert_eq!(bank.alive(), 2);
    }

    #[test]
    fn fail_is_idempotent_at_zero() {
        let mut bank = BatteryBank::new(1);
        bank.fail_one();
        bank.fail_one();
        assert_eq!(bank.alive(), 0);
        assert_eq!(bank.state(), BatteryState::Dead);
    }

    #[test]
    #[should_panic(expected = "at least one battery")]
    fn zero_batteries_rejected() {
        let _ = BatteryBank::new(0);
    }

    #[test]
    fn survival_probability_math() {
        // No time elapsed: certain survival.
        assert_eq!(survival_probability(1, 0.1, 0.0), 1.0);
        // Monotone in redundancy…
        let s1 = survival_probability(1, 0.1, 5.0);
        let s2 = survival_probability(2, 0.1, 5.0);
        let s3 = survival_probability(3, 0.1, 5.0);
        assert!(s1 < s2 && s2 < s3);
        // …and decreasing in time.
        assert!(survival_probability(2, 0.1, 10.0) < s2);
        // A perfectly reliable cell never fails.
        assert_eq!(survival_probability(1, 0.0, 100.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_failure_probability_rejected() {
        let _ = survival_probability(1, 1.5, 1.0);
    }

    #[test]
    fn state_transitions_are_ordered_healthy_degraded_dead() {
        let mut bank = BatteryBank::new(3);
        let mut seen = vec![bank.state()];
        for _ in 0..3 {
            seen.push(bank.fail_one());
        }
        assert_eq!(
            seen,
            vec![
                BatteryState::Healthy,
                BatteryState::Degraded,
                BatteryState::Degraded,
                BatteryState::Dead,
            ],
            "failures must walk Healthy→Degraded→Dead, never backwards"
        );
    }

    #[test]
    fn one_survivor_keeps_data_safe() {
        let mut bank = BatteryBank::new(3);
        bank.fail_one();
        bank.fail_one();
        assert_eq!(bank.alive(), 1);
        assert_eq!(bank.state(), BatteryState::Degraded);
        assert!(
            bank.preserves_data(),
            "a single surviving cell must keep contents non-volatile"
        );
        bank.fail_one();
        assert!(!bank.preserves_data());
    }

    #[test]
    fn bus_power_overrides_dead_batteries() {
        let mut bank = BatteryBank::new(2);
        bank.set_bus_power(true);
        bank.fail_one();
        bank.fail_one();
        assert_eq!(bank.state(), BatteryState::Dead);
        assert!(
            bank.preserves_data(),
            "a running host refreshes the part from the bus"
        );
        // The host loses power: now only batteries matter, and they're gone.
        bank.set_bus_power(false);
        assert!(!bank.preserves_data());
    }

    #[test]
    fn age_to_follows_the_failure_clock() {
        let clock = [
            SimTime::from_secs(10),
            SimTime::from_secs(20),
            SimTime::from_secs(30),
        ];
        let mut bank = BatteryBank::new(3);
        assert_eq!(
            bank.age_to(SimTime::from_secs(5), &clock),
            BatteryState::Healthy
        );
        assert_eq!(
            bank.age_to(SimTime::from_secs(25), &clock),
            BatteryState::Degraded
        );
        assert_eq!(bank.alive(), 1);
        // Idempotent: re-aging to the same instant changes nothing.
        assert_eq!(
            bank.age_to(SimTime::from_secs(25), &clock),
            BatteryState::Degraded
        );
        assert_eq!(
            bank.age_to(SimTime::from_secs(31), &clock),
            BatteryState::Dead
        );
        // A two-cell bank ignores the third clock entry.
        let mut pair = BatteryBank::new(2);
        assert_eq!(
            pair.age_to(SimTime::from_secs(25), &clock),
            BatteryState::Dead
        );
    }

    #[test]
    fn age_to_never_resurrects_manually_failed_cells() {
        let clock = [SimTime::from_secs(100); 3];
        let mut bank = BatteryBank::new(3);
        bank.fail_one();
        bank.age_to(SimTime::from_secs(1), &clock);
        assert_eq!(bank.alive(), 2, "aging must not undo an injected failure");
    }

    #[test]
    fn display_values() {
        assert_eq!(BatteryState::Healthy.to_string(), "healthy");
        assert_eq!(BatteryState::Degraded.to_string(), "degraded");
        assert_eq!(BatteryState::Dead.to_string(), "dead");
    }
}
