//! Shared plumbing for the Criterion benchmark harness.
//!
//! Every bench target under `benches/` regenerates one table or figure of
//! Baker et al. (ASPLOS 1992) — it first prints the artifact (so `cargo
//! bench` doubles as the reproduction driver), then measures the runner.
//! See `EXPERIMENTS.md` for the artifact index.

#![forbid(unsafe_code)]

use std::sync::OnceLock;

use nvfs_experiments::env::Env;

/// The shared benchmark environment. Benchmarks default to the tiny scale
/// so a full `cargo bench` sweep completes quickly; set `NVFS_BENCH_SCALE`
/// to `small` or `paper` for higher-fidelity runs.
pub fn bench_env() -> &'static Env {
    static ENV: OnceLock<Env> = OnceLock::new();
    ENV.get_or_init(|| match std::env::var("NVFS_BENCH_SCALE").as_deref() {
        Ok("paper") => Env::paper(),
        Ok("small") => Env::small(),
        _ => Env::tiny(),
    })
}

/// Prints a regenerated artifact with a banner.
pub fn show(artifact: &str, body: &str) {
    println!("\n=== regenerated: {artifact} ===");
    println!("{body}");
}
