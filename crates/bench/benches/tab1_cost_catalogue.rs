//! Regenerates Table 1 (NVRAM costs) and benchmarks the catalogue queries.

use criterion::{criterion_group, criterion_main, Criterion};
use nvfs_bench::show;
use nvfs_experiments::tab1;
use nvfs_nvram::cost::{cheapest_nvram_for, nvram_to_dram_ratio};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let out = tab1::run();
    show("Table 1: current NVRAM costs", &out.table.render());
    let mut g = c.benchmark_group("tab1");
    g.bench_function("run", |b| b.iter(|| black_box(tab1::run())));
    g.bench_function("cheapest_for_16mb", |b| b.iter(|| black_box(cheapest_nvram_for(16.0))));
    g.bench_function("price_ratio", |b| b.iter(|| black_box(nvram_to_dram_ratio(4.0))));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
