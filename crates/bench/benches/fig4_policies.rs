//! Regenerates Figure 4 (replacement policies) and benchmarks each policy
//! at 1 MB of NVRAM.

use criterion::{criterion_group, criterion_main, Criterion};
use nvfs_bench::{bench_env, show};
use nvfs_core::{ClusterSim, PolicyKind, SimConfig};
use nvfs_experiments::fig4;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let env = bench_env();
    let out = fig4::run(env);
    show("Figure 4: replacement policies (Trace 7)", &out.figure.render());
    let trace7 = env.trace7();
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    for (name, policy) in [
        ("lru", PolicyKind::Lru),
        ("random", PolicyKind::Random { seed: 1992 }),
        ("omniscient", PolicyKind::Omniscient),
    ] {
        g.bench_function(name, |b| {
            let cfg = SimConfig::unified(8 << 20, 1 << 20).with_policy(policy);
            b.iter(|| black_box(ClusterSim::new(cfg.clone()).run(trace7.ops())))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
