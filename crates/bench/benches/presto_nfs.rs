//! Regenerates the §3 NFS/Prestoserve comparison and benchmarks both
//! servicing paths.

use criterion::{criterion_group, criterion_main, Criterion};
use nvfs_bench::show;
use nvfs_disk::DiskParams;
use nvfs_experiments::presto;
use nvfs_server::presto::{nfs_synchronous, prestoserve, PrestoConfig, WriteRequest};
use nvfs_types::SimTime;
use nvfs_rng::{Rng, SeedableRng, StdRng};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let out = presto::run();
    show("§3 NFS synchronous writes vs Prestoserve NVRAM", &out.table.render());
    let disk = DiskParams::sprite_era();
    let mut rng = StdRng::seed_from_u64(5);
    let reqs: Vec<WriteRequest> = (0..1000)
        .map(|i| WriteRequest {
            time: SimTime::from_millis(i * 20),
            addr: rng.gen_range(0..disk.capacity - 8192),
            len: 8192,
        })
        .collect();
    let mut g = c.benchmark_group("presto");
    g.bench_function("nfs_synchronous", |b| b.iter(|| black_box(nfs_synchronous(&reqs, disk))));
    g.bench_function("prestoserve", |b| {
        b.iter(|| black_box(prestoserve(&reqs, disk, PrestoConfig::default())))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
