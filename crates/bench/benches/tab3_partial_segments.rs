//! Regenerates Table 3 (forced partial segments) and benchmarks the LFS
//! server simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use nvfs_bench::{bench_env, show};
use nvfs_experiments::tab3;
use nvfs_lfs::fs::{run_filesystem, LfsConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let env = bench_env();
    let out = tab3::run(env);
    show("Table 3: forced partial segments", &out.table.render());
    let user6 = &env.server[0];
    let mut g = c.benchmark_group("tab3");
    g.sample_size(10);
    g.bench_function("user6_direct", |b| {
        b.iter(|| black_box(run_filesystem(user6, &LfsConfig::direct())))
    });
    g.bench_function("all_filesystems", |b| b.iter(|| black_box(tab3::run(env))));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
