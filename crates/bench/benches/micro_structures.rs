//! Micro-benchmarks of the core data structures: RangeSet algebra, the
//! block store, segment packing, and workload generation.

use criterion::{criterion_group, criterion_main, Criterion};
use nvfs_core::block_store::BlockStore;
use nvfs_lfs::{SegmentCause, SegmentWriter};
use nvfs_trace::synth::{SpriteTraceSet, TraceSetConfig};
use nvfs_types::{BlockId, ByteRange, FileId, RangeSet, SimTime};
use nvfs_rng::{Rng, SeedableRng, StdRng};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro");

    g.bench_function("rangeset_insert_remove", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let mut s = RangeSet::new();
            for _ in 0..200 {
                let start = rng.gen_range(0..1_000_000u64);
                let len = rng.gen_range(1..10_000u64);
                s.insert(ByteRange::at(start, len));
            }
            for _ in 0..100 {
                let start = rng.gen_range(0..1_000_000u64);
                s.remove(ByteRange::at(start, 5_000));
            }
            black_box(s.len_bytes())
        })
    });

    g.bench_function("block_store_churn", |b| {
        b.iter(|| {
            let mut store = BlockStore::new(512);
            for i in 0..4096u64 {
                let id = BlockId::new(FileId((i % 64) as u32), i / 64);
                if store.is_full() {
                    let (victim, _) = store.lru_block().expect("non-empty");
                    store.remove(victim);
                }
                if !store.contains(id) {
                    store.insert(id, SimTime::from_micros(i));
                }
                store.mark_dirty(id, id.byte_range(), SimTime::from_micros(i));
            }
            black_box(store.total_dirty_bytes())
        })
    });

    g.bench_function("segment_packing_1mb", |b| {
        b.iter(|| {
            let mut w = SegmentWriter::new(nvfs_lfs::SEGMENT_BYTES);
            let chunks: Vec<(FileId, RangeSet)> = (0..16)
                .map(|i| (FileId(i), RangeSet::from_range(ByteRange::new(0, 64 << 10))))
                .collect();
            w.write_all(SimTime::ZERO, &chunks, SegmentCause::Timeout, false);
            black_box(w.records().len())
        })
    });

    let mut g2 = {
        g.finish();
        c.benchmark_group("generation")
    };
    g2.sample_size(10);
    g2.bench_function("sprite_trace_set_tiny", |b| {
        b.iter(|| black_box(SpriteTraceSet::generate(&TraceSetConfig::tiny())))
    });
    g2.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
