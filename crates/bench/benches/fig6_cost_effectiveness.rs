//! Regenerates Figure 6 (NVRAM vs volatile memory) and benchmarks the cost
//! interpolation.

use criterion::{criterion_group, criterion_main, Criterion};
use nvfs_bench::{bench_env, show};
use nvfs_core::cost::{equivalent_extra_mb, TrafficPoint};
use nvfs_experiments::fig6;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let env = bench_env();
    let out = fig6::run(env);
    show("Figure 6: benefits of additional memory", &out.figure.render());
    let curve: Vec<TrafficPoint> = out
        .figure
        .series("Volatile-8MB")
        .expect("series present")
        .points
        .iter()
        .map(|&(x, y)| TrafficPoint { extra_mb: x, traffic_pct: y })
        .collect();
    let mut g = c.benchmark_group("fig6");
    g.bench_function("equivalent_extra_mb", |b| {
        b.iter(|| black_box(equivalent_extra_mb(&curve, 40.0)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
