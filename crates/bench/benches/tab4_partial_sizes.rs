//! Regenerates Table 4 (partial segment sizes and space cost).

use criterion::{criterion_group, criterion_main, Criterion};
use nvfs_bench::{bench_env, show};
use nvfs_experiments::tab4;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let env = bench_env();
    let out = tab4::run(env);
    show("Table 4: partial segment sizes", &out.table.render());
    let mut g = c.benchmark_group("tab4");
    g.sample_size(10);
    g.bench_function("run", |b| b.iter(|| black_box(tab4::run(env))));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
