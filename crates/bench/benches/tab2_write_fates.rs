//! Regenerates Table 2 (fate of written bytes) and benchmarks the fate
//! aggregation.

use criterion::{criterion_group, criterion_main, Criterion};
use nvfs_bench::{bench_env, show};
use nvfs_experiments::tab2;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let env = bench_env();
    let out = tab2::run(env);
    show("Table 2: summary of types of write traffic", &out.table.render());
    let mut g = c.benchmark_group("tab2");
    g.sample_size(10);
    g.bench_function("run", |b| b.iter(|| black_box(tab2::run(env))));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
