//! Regenerates Figure 5 (cache models vs total traffic) and benchmarks the
//! three models at +4 MB.

use criterion::{criterion_group, criterion_main, Criterion};
use nvfs_bench::{bench_env, show};
use nvfs_core::{ClusterSim, SimConfig};
use nvfs_experiments::fig5;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let env = bench_env();
    let out = fig5::run(env);
    show("Figure 5: cache models, net total traffic", &out.figure.render());
    let trace7 = env.trace7();
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    for (name, cfg) in [
        ("volatile_12mb", SimConfig::volatile(12 << 20)),
        ("write_aside_8p4", SimConfig::write_aside(8 << 20, 4 << 20)),
        ("unified_8p4", SimConfig::unified(8 << 20, 4 << 20)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(ClusterSim::new(cfg.clone()).run(trace7.ops())))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
