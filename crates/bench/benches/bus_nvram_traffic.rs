//! Regenerates the §2.6 bus-traffic / NVRAM-access comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use nvfs_bench::{bench_env, show};
use nvfs_experiments::bus_nvram;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let env = bench_env();
    let out = bus_nvram::run(env);
    show("§2.6 bus traffic and NVRAM accesses", &out.table.render());
    println!(
        "bus ratio (write-aside/unified): {:.2}   NVRAM access ratio (unified/write-aside): {:.2}",
        out.bus_ratio(),
        out.access_ratio()
    );
    let mut g = c.benchmark_group("bus_nvram");
    g.sample_size(10);
    g.bench_function("run_8mb_8mb", |b| b.iter(|| black_box(bus_nvram::run(env))));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
