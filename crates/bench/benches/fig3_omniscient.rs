//! Regenerates Figure 3 (omniscient policy vs NVRAM size) and benchmarks
//! the unified-model simulation and the omniscient pre-pass.

use criterion::{criterion_group, criterion_main, Criterion};
use nvfs_bench::{bench_env, show};
use nvfs_core::{ClusterSim, OmniscientSchedule, PolicyKind, SimConfig};
use nvfs_experiments::fig3;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let env = bench_env();
    let out = fig3::run(env);
    show("Figure 3: omniscient replacement policy", &out.figure.render());
    let trace7 = env.trace7();
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("schedule_build_trace7", |b| {
        b.iter(|| black_box(OmniscientSchedule::build(trace7.ops())))
    });
    g.bench_function("unified_omniscient_1mb", |b| {
        let cfg = SimConfig::unified(8 << 20, 1 << 20).with_policy(PolicyKind::Omniscient);
        b.iter(|| black_box(ClusterSim::new(cfg.clone()).run(trace7.ops())))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
