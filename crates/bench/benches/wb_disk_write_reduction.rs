//! Regenerates the §3 headline (½ MB write buffer reductions) and sweeps
//! the buffer capacity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nvfs_bench::{bench_env, show};
use nvfs_experiments::{read_latency, write_buffer};
use nvfs_lfs::fs::{run_filesystem, LfsConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let env = bench_env();
    let out = write_buffer::run(env);
    show("§3 write-buffer disk access reductions", &out.table.render());
    // Capacity sweep: how the /user6 reduction varies with buffer size.
    println!("capacity sweep (/user6 reduction):");
    for kb in [64u64, 128, 256, 512, 1024, 2048] {
        let sweep = write_buffer::run_with_capacity(env, kb << 10);
        let u6 = sweep.of("/user6").expect("/user6 present");
        println!("  {:>5} KB buffer -> {:>5.1}% fewer accesses", kb, 100.0 * u6.reduction);
    }
    let rl = read_latency::run();
    show("§3 read response vs write size", &rl.table.render());
    let user6 = &env.server[0];
    let mut g = c.benchmark_group("write_buffer");
    g.sample_size(10);
    for kb in [128u64, 512] {
        g.bench_with_input(BenchmarkId::new("user6_buffered", kb), &kb, |b, &kb| {
            b.iter(|| black_box(run_filesystem(user6, &LfsConfig::with_fsync_buffer(kb << 10))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
