//! Regenerates Figure 2 (byte lifetimes) and benchmarks the infinite-cache
//! lifetime pass.

use criterion::{criterion_group, criterion_main, Criterion};
use nvfs_bench::{bench_env, show};
use nvfs_core::LifetimeLog;
use nvfs_experiments::fig2;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let env = bench_env();
    let out = fig2::run(env);
    show("Figure 2: byte lifetimes", &out.figure.render());
    let trace7 = env.trace7();
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("lifetime_pass_trace7", |b| {
        b.iter(|| black_box(LifetimeLog::analyze(trace7.ops())))
    });
    let log = LifetimeLog::analyze(trace7.ops());
    g.bench_function("delay_sweep", |b| {
        b.iter(|| {
            for &m in &fig2::DELAY_MINUTES {
                black_box(log.net_write_traffic_at_delay(
                    nvfs_types::SimDuration::from_secs_f64(m * 60.0),
                ));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
