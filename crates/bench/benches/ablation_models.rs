//! Regenerates the extension artifacts (hybrid model, dirty preference,
//! block-level consistency) and benchmarks the hybrid simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use nvfs_bench::{bench_env, show};
use nvfs_core::{ClusterSim, SimConfig};
use nvfs_experiments::{ablations, consistency_protocol};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let env = bench_env();
    let hybrid = ablations::hybrid(env);
    show("Ablation: hybrid vs unified", &hybrid.figure.render());
    let pref = ablations::dirty_preference(env);
    show("Ablation: dirty-block preference", &pref.table.render());
    let cons = consistency_protocol::run(env);
    show("Extension: consistency protocols", &cons.table.render());

    let trace7 = env.trace7();
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("hybrid_8p1", |b| {
        let cfg = SimConfig::hybrid(8 << 20, 1 << 20);
        b.iter(|| black_box(ClusterSim::new(cfg.clone()).run(trace7.ops())))
    });
    g.bench_function("block_consistency_8p1", |b| {
        let cfg = SimConfig::unified(8 << 20, 1 << 20)
            .with_consistency(nvfs_core::ConsistencyMode::BlockOnDemand);
        b.iter(|| black_box(ClusterSim::new(cfg.clone()).run(trace7.ops())))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
