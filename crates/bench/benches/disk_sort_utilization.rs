//! Regenerates the §3 disk-sorting claim (7% random vs ~40% sorted) and
//! benchmarks batch servicing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nvfs_bench::show;
use nvfs_disk::{Discipline, DiskParams, DiskQueue, DiskRequest};
use nvfs_experiments::disk_sort;
use nvfs_rng::{Rng, SeedableRng, StdRng};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let out = disk_sort::run();
    show("§3 disk bandwidth: random vs sorted writes", &out.table.render());
    let disk = DiskParams::sprite_era();
    let mut rng = StdRng::seed_from_u64(3);
    let reqs: Vec<DiskRequest> = (0..1000)
        .map(|_| DiskRequest { addr: rng.gen_range(0..disk.capacity - 4096), len: 4096 })
        .collect();
    let mut g = c.benchmark_group("disk_sort");
    for d in [Discipline::Fifo, Discipline::Elevator] {
        g.bench_with_input(BenchmarkId::new("service_1000", format!("{d:?}")), &d, |b, &d| {
            b.iter(|| black_box(DiskQueue::new(disk).service_batch(&reqs, d)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
