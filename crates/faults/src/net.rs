//! Deterministic network-fault plans for the client↔server RPC layer.
//!
//! The paper's reliability argument (§2.3–§2.5) is really about what a
//! client can do *while the server is unreachable*: NVRAM lets it keep
//! absorbing writes, a volatile cache must block or lose. A
//! [`NetFaultPlan`] compiles `(seed, NetFaultPlanConfig)` into the wire
//! behaviour needed to exercise that claim — timed partitions that sever
//! one client or the whole server, plus per-message drop, duplication and
//! delay draws that the RPC state machine in `nvfs-core` resolves into
//! retries, timeouts and out-of-order deliveries.
//!
//! # Determinism contract
//!
//! Partition placement and per-message fates use **new** RNG streams
//! (`STREAM_NET_*`), disjoint from the four crash/battery/torn/server
//! streams in the crate root, so adding network faults to a run never
//! perturbs an existing [`FaultSchedule`](crate::FaultSchedule) compiled
//! from the same seed. Message fates are keyed by
//! `(client, request id, attempt)` rather than drawn from a sequential
//! stream: a message's fate is a pure function of its identity, so it is
//! independent of the interleaving in which requests are issued.
//!
//! # Examples
//!
//! ```
//! use nvfs_faults::net::{NetFaultPlan, NetFaultPlanConfig};
//! use nvfs_types::SimDuration;
//!
//! let config = NetFaultPlanConfig::new(4, SimDuration::from_secs(600))
//!     .with_client_partitions(2)
//!     .with_drop_probability(0.05);
//! let a = NetFaultPlan::compile(7, &config).unwrap();
//! let b = NetFaultPlan::compile(7, &config).unwrap();
//! assert_eq!(a, b, "same (seed, config) => identical plan");
//! ```

use std::error::Error;
use std::fmt;

use nvfs_rng::{Rng, SeedableRng, StdRng};
use nvfs_types::{ClientId, SimDuration, SimTime};

// New streams for the network dimension; the four crash-side streams live
// in the crate root and must never change.
const STREAM_NET_PARTITION: u64 = 0x6e65_742d_7061_7205; // "net-par"
const STREAM_NET_MSG: u64 = 0x6e65_742d_6d73_6706; // "net-msg"

/// A network fault plan could not be compiled.
#[derive(Debug, Clone, PartialEq)]
pub enum NetFaultError {
    /// Client partitions were requested for a cluster with no clients.
    NoClients,
    /// A probability knob was outside `[0, 1]`.
    BadProbability {
        /// The offending value.
        value: f64,
    },
    /// Partitions cannot be placed on a zero-length trace.
    ZeroDuration,
    /// Partition windows need a positive mean duration.
    ZeroPartitionDuration,
    /// The minimum one-way delay exceeds the maximum.
    BadDelayRange {
        /// Configured minimum, in microseconds.
        min_us: u64,
        /// Configured maximum, in microseconds.
        max_us: u64,
    },
    /// The RPC layer needs a positive retransmit timeout.
    ZeroTimeout,
    /// The bounded in-flight window must admit at least one request.
    ZeroWindow,
}

impl fmt::Display for NetFaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetFaultError::NoClients => {
                write!(f, "client partitions requested but the plan has no clients")
            }
            NetFaultError::BadProbability { value } => {
                write!(f, "probability {value} is outside [0, 1]")
            }
            NetFaultError::ZeroDuration => {
                write!(f, "network faults cannot be placed on a zero-length trace")
            }
            NetFaultError::ZeroPartitionDuration => {
                write!(f, "partition windows need a positive mean duration")
            }
            NetFaultError::BadDelayRange { min_us, max_us } => {
                write!(
                    f,
                    "delay range is inverted: min {min_us}us > max {max_us}us"
                )
            }
            NetFaultError::ZeroTimeout => {
                write!(f, "the RPC layer needs a positive retransmit timeout")
            }
            NetFaultError::ZeroWindow => {
                write!(f, "the in-flight window must admit at least one request")
            }
        }
    }
}

impl Error for NetFaultError {}

/// What a partition window severs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PartitionScope {
    /// One client loses its link to the server.
    Client(ClientId),
    /// The server is unreachable from every client.
    Server,
}

/// A half-open `[start, end)` window during which an edge is severed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWindow {
    /// Which edge the window severs.
    pub scope: PartitionScope,
    /// First severed instant.
    pub start: SimTime,
    /// First healed instant.
    pub end: SimTime,
}

impl PartitionWindow {
    /// Whether the window covers `at`.
    pub fn covers(&self, at: SimTime) -> bool {
        self.start <= at && at < self.end
    }

    /// Whether the window severs the edge between `client` and the server.
    pub fn severs(&self, client: ClientId) -> bool {
        match self.scope {
            PartitionScope::Client(c) => c == client,
            PartitionScope::Server => true,
        }
    }
}

/// Declarative description of the network faults to compile.
///
/// Built with [`new`](NetFaultPlanConfig::new) plus `with_*` knobs; every
/// knob defaults to "off" (no partitions, lossless links) so a default
/// plan describes a perfect network with only the modelled RPC latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetFaultPlanConfig {
    /// Clients in the cluster (partition targets).
    pub clients: u32,
    /// Trace duration partitions are placed within.
    pub duration: SimDuration,
    /// Single-client partition windows to place.
    pub client_partitions: u32,
    /// Whole-server partition windows to place.
    pub server_partitions: u32,
    /// Mean partition window length; actual lengths are drawn uniformly
    /// from `[mean/2, 3*mean/2]`.
    pub partition_duration: SimDuration,
    /// Probability an individual message transmission is dropped.
    pub drop_probability: f64,
    /// Probability a delivered message is also delivered a second time.
    pub duplicate_probability: f64,
    /// Minimum one-way message delay.
    pub delay_min: SimDuration,
    /// Maximum one-way message delay; unequal delays reorder messages
    /// within the bounded in-flight window.
    pub delay_max: SimDuration,
    /// Client retransmit timeout.
    pub rpc_timeout: SimDuration,
    /// Initial retry backoff; doubles per attempt.
    pub backoff_base: SimDuration,
    /// Backoff ceiling for the exponential schedule.
    pub backoff_cap: SimDuration,
    /// Bounded in-flight window: a client holds at most this many
    /// unacknowledged requests (bounds reordering distance).
    pub max_in_flight: u32,
}

impl NetFaultPlanConfig {
    /// A lossless, partition-free plan for `clients` over `duration`.
    pub fn new(clients: u32, duration: SimDuration) -> Self {
        NetFaultPlanConfig {
            clients,
            duration,
            client_partitions: 0,
            server_partitions: 0,
            partition_duration: SimDuration::from_secs(60),
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            delay_min: SimDuration::from_micros(500),
            delay_max: SimDuration::from_micros(5_000),
            rpc_timeout: SimDuration::from_secs(1),
            backoff_base: SimDuration::from_millis(500),
            backoff_cap: SimDuration::from_secs(30),
            max_in_flight: 8,
        }
    }

    /// Places `n` single-client partition windows.
    pub fn with_client_partitions(mut self, n: u32) -> Self {
        self.client_partitions = n;
        self
    }

    /// Places `n` whole-server partition windows.
    pub fn with_server_partitions(mut self, n: u32) -> Self {
        self.server_partitions = n;
        self
    }

    /// Sets the mean partition window length.
    pub fn with_partition_duration(mut self, mean: SimDuration) -> Self {
        self.partition_duration = mean;
        self
    }

    /// Sets the per-transmission drop probability.
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        self.drop_probability = p;
        self
    }

    /// Sets the per-delivery duplication probability.
    pub fn with_duplicate_probability(mut self, p: f64) -> Self {
        self.duplicate_probability = p;
        self
    }

    /// Sets the one-way delay range `[min, max]`.
    pub fn with_delay_range(mut self, min: SimDuration, max: SimDuration) -> Self {
        self.delay_min = min;
        self.delay_max = max;
        self
    }

    /// Sets the client retransmit timeout.
    pub fn with_rpc_timeout(mut self, timeout: SimDuration) -> Self {
        self.rpc_timeout = timeout;
        self
    }

    /// Sets the exponential backoff base and ceiling.
    pub fn with_backoff(mut self, base: SimDuration, cap: SimDuration) -> Self {
        self.backoff_base = base;
        self.backoff_cap = cap;
        self
    }

    /// Sets the bounded in-flight window size.
    pub fn with_max_in_flight(mut self, window: u32) -> Self {
        self.max_in_flight = window;
        self
    }

    fn validate(&self) -> Result<(), NetFaultError> {
        if self.client_partitions > 0 && self.clients == 0 {
            return Err(NetFaultError::NoClients);
        }
        for p in [self.drop_probability, self.duplicate_probability] {
            if !(0.0..=1.0).contains(&p) {
                return Err(NetFaultError::BadProbability { value: p });
            }
        }
        let partitions = self.client_partitions + self.server_partitions;
        if partitions > 0 && self.duration == SimDuration::ZERO {
            return Err(NetFaultError::ZeroDuration);
        }
        if partitions > 0 && self.partition_duration == SimDuration::ZERO {
            return Err(NetFaultError::ZeroPartitionDuration);
        }
        if self.delay_min > self.delay_max {
            return Err(NetFaultError::BadDelayRange {
                min_us: self.delay_min.as_micros(),
                max_us: self.delay_max.as_micros(),
            });
        }
        if self.rpc_timeout == SimDuration::ZERO {
            return Err(NetFaultError::ZeroTimeout);
        }
        if self.max_in_flight == 0 {
            return Err(NetFaultError::ZeroWindow);
        }
        Ok(())
    }
}

/// The fate the wire assigns one transmission attempt of one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MessageFate {
    /// The transmission vanished; the client will time out and retry.
    pub dropped: bool,
    /// The delivery is repeated (server sees the request twice).
    pub duplicated: bool,
    /// One-way delay of the (first) delivery.
    pub delay: SimDuration,
    /// One-way delay of the duplicate delivery, when `duplicated`.
    pub dup_delay: SimDuration,
}

/// A compiled, immutable network fault plan: merged partition windows
/// plus pure-function message fates.
///
/// Equality compares the placed windows and the config, so two compiles
/// from the same `(seed, config)` can be diffed for determinism.
#[derive(Debug, Clone, PartialEq)]
pub struct NetFaultPlan {
    seed: u64,
    config: NetFaultPlanConfig,
    windows: Vec<PartitionWindow>,
}

impl NetFaultPlan {
    /// Compiles a plan. Partition windows overlapping on the same edge are
    /// merged, then sorted by `(start, scope)`.
    pub fn compile(seed: u64, config: &NetFaultPlanConfig) -> Result<Self, NetFaultError> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(seed ^ STREAM_NET_PARTITION);
        let span = config.duration.as_micros();
        let mean = config.partition_duration.as_micros();
        let mut raw = Vec::new();
        let mut place = |rng: &mut StdRng, scope: PartitionScope| {
            let start = rng.gen_range(0..span.max(1));
            let len = rng.gen_range(mean / 2..=mean + mean / 2).max(1);
            raw.push(PartitionWindow {
                scope,
                start: SimTime::from_micros(start),
                end: SimTime::from_micros(start.saturating_add(len)),
            });
        };
        for _ in 0..config.client_partitions {
            let client = ClientId(rng.gen_range(0..config.clients));
            place(&mut rng, PartitionScope::Client(client));
        }
        for _ in 0..config.server_partitions {
            place(&mut rng, PartitionScope::Server);
        }
        let windows = merge_windows(raw);
        nvfs_obs::counter_add("faults.net_plans_compiled", 1);
        Ok(NetFaultPlan {
            seed,
            config: *config,
            windows,
        })
    }

    /// The knobs this plan was compiled from.
    pub fn config(&self) -> &NetFaultPlanConfig {
        &self.config
    }

    /// The merged partition windows, sorted by `(start, scope)`.
    pub fn windows(&self) -> &[PartitionWindow] {
        &self.windows
    }

    /// Whether the edge between `client` and the server is severed at `at`.
    pub fn client_severed(&self, client: ClientId, at: SimTime) -> bool {
        self.windows
            .iter()
            .any(|w| w.severs(client) && w.covers(at))
    }

    /// Whether the server is unreachable from *every* client at `at`.
    pub fn server_severed(&self, at: SimTime) -> bool {
        self.windows
            .iter()
            .any(|w| w.scope == PartitionScope::Server && w.covers(at))
    }

    /// First instant at or after `at` when `client` can reach the server
    /// (chained overlapping windows are followed to their joint end).
    pub fn heal_time(&self, client: ClientId, at: SimTime) -> SimTime {
        let mut t = at;
        loop {
            let Some(w) = self
                .windows
                .iter()
                .filter(|w| w.severs(client) && w.covers(t))
                .max_by_key(|w| w.end)
            else {
                return t;
            };
            t = w.end;
        }
    }

    /// First instant at or after `at` when the server is reachable again.
    pub fn server_heal_time(&self, at: SimTime) -> SimTime {
        let mut t = at;
        loop {
            let Some(w) = self
                .windows
                .iter()
                .filter(|w| w.scope == PartitionScope::Server && w.covers(t))
                .max_by_key(|w| w.end)
            else {
                return t;
            };
            t = w.end;
        }
    }

    /// The wire's verdict on transmission `attempt` of request
    /// `(client, req_id)` — a pure function of the plan seed and the
    /// message identity, independent of issue order.
    pub fn message_fate(&self, client: ClientId, req_id: u64, attempt: u32) -> MessageFate {
        let key = mix3(u64::from(client.0), req_id, u64::from(attempt));
        let mut rng = StdRng::seed_from_u64(self.seed ^ STREAM_NET_MSG ^ key);
        let dropped = rng.gen_bool(self.config.drop_probability);
        let duplicated = rng.gen_bool(self.config.duplicate_probability);
        let (lo, hi) = (
            self.config.delay_min.as_micros(),
            self.config.delay_max.as_micros(),
        );
        let delay = SimDuration::from_micros(rng.gen_range(lo..=hi));
        let dup_delay = SimDuration::from_micros(rng.gen_range(lo..=hi));
        MessageFate {
            dropped,
            duplicated,
            delay,
            dup_delay,
        }
    }

    /// Capped exponential backoff before retransmission `attempt + 1`,
    /// including deterministic jitter keyed by the message identity.
    pub fn backoff(&self, client: ClientId, req_id: u64, attempt: u32) -> SimDuration {
        let base = self.config.backoff_base.as_micros().max(1);
        let cap = self.config.backoff_cap.as_micros().max(base);
        let exp = base.saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX));
        let key = mix3(u64::from(client.0), req_id, u64::from(attempt) | (1 << 32));
        let mut rng = StdRng::seed_from_u64(self.seed ^ STREAM_NET_MSG ^ key);
        let jitter = rng.gen_range(0..=base);
        SimDuration::from_micros(exp.min(cap).saturating_add(jitter))
    }
}

/// Merges overlapping or touching windows on the same edge; the result is
/// sorted by `(start, scope)` with at most one window covering any
/// `(edge, instant)` pair.
fn merge_windows(mut raw: Vec<PartitionWindow>) -> Vec<PartitionWindow> {
    raw.sort_by_key(|w| (w.scope, w.start, w.end));
    let mut out: Vec<PartitionWindow> = Vec::with_capacity(raw.len());
    for w in raw {
        match out.last_mut() {
            Some(prev) if prev.scope == w.scope && w.start <= prev.end => {
                prev.end = prev.end.max(w.end);
            }
            _ => out.push(w),
        }
    }
    out.sort_by_key(|w| (w.start, w.scope, w.end));
    out
}

/// SplitMix-style avalanche over three identity words, so nearby message
/// identities land on unrelated RNG streams.
fn mix3(a: u64, b: u64, c: u64) -> u64 {
    let mut x = a
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(b.wrapping_mul(0xc2b2_ae3d_27d4_eb4f))
        .wrapping_add(c.wrapping_mul(0x1656_67b1_9e37_79f9));
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultPlanConfig, FaultSchedule};

    fn config() -> NetFaultPlanConfig {
        NetFaultPlanConfig::new(4, SimDuration::from_secs(600))
            .with_client_partitions(3)
            .with_server_partitions(1)
            .with_drop_probability(0.1)
            .with_duplicate_probability(0.05)
    }

    #[test]
    fn compile_is_deterministic() {
        let a = NetFaultPlan::compile(42, &config()).unwrap();
        let b = NetFaultPlan::compile(42, &config()).unwrap();
        assert_eq!(a, b);
        assert!(!a.windows().is_empty());
    }

    #[test]
    fn message_fates_are_pure_functions_of_identity() {
        let plan = NetFaultPlan::compile(42, &config()).unwrap();
        let c = ClientId(1);
        assert_eq!(plan.message_fate(c, 9, 0), plan.message_fate(c, 9, 0));
        assert_eq!(plan.backoff(c, 9, 2), plan.backoff(c, 9, 2));
        // Distinct identities get independent draws somewhere in a small
        // scan (drop probability 0.1 would make 40 identical fates
        // astronomically unlikely).
        let distinct = (0..40)
            .map(|i| plan.message_fate(c, i, 0))
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        assert!(distinct > 1, "fates must vary across request ids");
    }

    #[test]
    fn net_knobs_do_not_perturb_crash_schedules() {
        let crash_plan =
            FaultPlanConfig::new(4, SimDuration::from_secs(600)).with_client_crashes(2);
        let before = FaultSchedule::compile(42, &crash_plan).unwrap();
        let _net = NetFaultPlan::compile(42, &config()).unwrap();
        let after = FaultSchedule::compile(42, &crash_plan).unwrap();
        assert_eq!(
            before, after,
            "net compilation must not touch crash streams"
        );
        // And changing a net knob leaves partition placement alone.
        let a = NetFaultPlan::compile(42, &config()).unwrap();
        let b = NetFaultPlan::compile(42, &config().with_drop_probability(0.9)).unwrap();
        assert_eq!(a.windows(), b.windows(), "drop knob must not move windows");
    }

    #[test]
    fn windows_merge_and_heal_chains_resolve() {
        let c = ClientId(0);
        let w = |scope, s, e| PartitionWindow {
            scope,
            start: SimTime::from_secs(s),
            end: SimTime::from_secs(e),
        };
        let merged = merge_windows(vec![
            w(PartitionScope::Client(c), 10, 20),
            w(PartitionScope::Client(c), 15, 30),
            w(PartitionScope::Server, 25, 40),
        ]);
        assert_eq!(merged.len(), 2);
        let plan = NetFaultPlan {
            seed: 0,
            config: NetFaultPlanConfig::new(1, SimDuration::from_secs(100)),
            windows: merged,
        };
        assert!(plan.client_severed(c, SimTime::from_secs(12)));
        assert!(
            plan.client_severed(c, SimTime::from_secs(26)),
            "server window severs all"
        );
        assert!(!plan.server_severed(SimTime::from_secs(12)));
        // Client window chains into the server window: heal at 40.
        assert_eq!(
            plan.heal_time(c, SimTime::from_secs(12)),
            SimTime::from_secs(40)
        );
        assert_eq!(
            plan.server_heal_time(SimTime::from_secs(26)),
            SimTime::from_secs(40)
        );
        assert_eq!(
            plan.heal_time(c, SimTime::from_secs(50)),
            SimTime::from_secs(50)
        );
    }

    #[test]
    fn typed_errors_cover_every_bad_knob() {
        let d = SimDuration::from_secs(600);
        let cases: Vec<(NetFaultPlanConfig, NetFaultError)> = vec![
            (
                NetFaultPlanConfig::new(0, d).with_client_partitions(1),
                NetFaultError::NoClients,
            ),
            (
                NetFaultPlanConfig::new(4, d).with_drop_probability(1.5),
                NetFaultError::BadProbability { value: 1.5 },
            ),
            (
                NetFaultPlanConfig::new(4, SimDuration::ZERO).with_server_partitions(1),
                NetFaultError::ZeroDuration,
            ),
            (
                NetFaultPlanConfig::new(4, d)
                    .with_server_partitions(1)
                    .with_partition_duration(SimDuration::ZERO),
                NetFaultError::ZeroPartitionDuration,
            ),
            (
                NetFaultPlanConfig::new(4, d)
                    .with_delay_range(SimDuration::from_secs(1), SimDuration::ZERO),
                NetFaultError::BadDelayRange {
                    min_us: 1_000_000,
                    max_us: 0,
                },
            ),
            (
                NetFaultPlanConfig::new(4, d).with_rpc_timeout(SimDuration::ZERO),
                NetFaultError::ZeroTimeout,
            ),
            (
                NetFaultPlanConfig::new(4, d).with_max_in_flight(0),
                NetFaultError::ZeroWindow,
            ),
        ];
        for (config, want) in cases {
            assert_eq!(NetFaultPlan::compile(1, &config).unwrap_err(), want);
        }
    }

    #[test]
    fn backoff_is_capped_and_grows() {
        let plan = NetFaultPlan::compile(3, &config()).unwrap();
        let c = ClientId(2);
        let base = plan.config().backoff_base.as_micros();
        let cap = plan.config().backoff_cap.as_micros() + base;
        for attempt in 0..12 {
            let b = plan.backoff(c, 1, attempt).as_micros();
            assert!(b <= cap, "backoff must respect the cap (+jitter)");
            // 2^attempt * base minus nothing: even with zero jitter the
            // exponential floor must hold until the cap kicks in.
            let floor = base.saturating_mul(1 << attempt.min(10)).min(cap - base);
            assert!(b >= floor, "attempt {attempt}: {b} < floor {floor}");
        }
    }
}
