//! Deterministic NVRAM corruption schedules.
//!
//! The paper's §2.3 reliability concern is not only power loss: NVRAM "is
//! vulnerable to operating system errors" — a stray kernel write scribbles
//! over cached dirty data as easily as over any other RAM, and the media
//! itself can decay. This module compiles the *attack side* of that story:
//! a [`CorruptionSchedule`] of stray-write scribbles, single-bit flips and
//! whole-board decay events, placed on the sim clock as a pure function of
//! `(seed, plan)`.
//!
//! The schedule says nothing about protection; defenses (write-protect
//! windows, per-block checksums, the background scrub) live in
//! `nvfs_nvram::protect` and the injection hook interprets events against
//! them. Corruption never alters simulated traffic — it damages *contents*,
//! which the oracle and scrub accounting observe.
//!
//! # Determinism contract
//!
//! Each corruption kind draws from its own RNG stream derived from the
//! seed, exactly like [`FaultSchedule::compile`](crate::FaultSchedule::compile):
//! changing the number of bit flips never moves a stray write, and no
//! corruption knob ever perturbs the existing crash/battery/torn/net
//! streams (distinct stream constants).
//!
//! # Examples
//!
//! ```
//! use nvfs_faults::corrupt::{CorruptionPlanConfig, CorruptionSchedule};
//! use nvfs_types::SimDuration;
//!
//! let plan = CorruptionPlanConfig::new(4, SimDuration::from_secs(600))
//!     .with_stray_writes(3)
//!     .with_bit_flips(2);
//! let a = CorruptionSchedule::compile(42, &plan).unwrap();
//! let b = CorruptionSchedule::compile(42, &plan).unwrap();
//! assert_eq!(a, b, "same (seed, plan) => identical schedule");
//! assert_eq!(a.events.len(), 5);
//! ```

use nvfs_rng::{Rng, SeedableRng, StdRng};
use nvfs_types::{ClientId, SimDuration, SimTime};

use crate::FaultError;

const STREAM_STRAY: u64 = 0x7374_7261_7977_7206; // "straywr"
const STREAM_FLIP: u64 = 0x6269_7466_6c69_7007; // "bitflip"
const STREAM_DECAY: u64 = 0x6465_6361_7979_7908; // "decayyy"

/// Smallest stray-write scribble the compiler will emit, so a stray write
/// is never weaker than a bit flip.
pub const MIN_STRAY_BYTES: u64 = 512;

/// The kinds of NVRAM corruption the schedule can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CorruptionKind {
    /// A stray kernel write scribbling a contiguous byte range of the
    /// board. Bounced by write-protection outside open windows.
    StrayWrite,
    /// A single-bit flip in one byte (media error). Bypasses protection.
    BitFlip,
    /// Whole-board decay: every cell on the board is suspect. Bypasses
    /// protection.
    Decay,
}

impl CorruptionKind {
    /// Every kind, in scribble → flip → decay order.
    pub const ALL: [CorruptionKind; 3] = [
        CorruptionKind::StrayWrite,
        CorruptionKind::BitFlip,
        CorruptionKind::Decay,
    ];

    /// Short static label for reports and events.
    pub fn label(&self) -> &'static str {
        match self {
            CorruptionKind::StrayWrite => "stray-write",
            CorruptionKind::BitFlip => "bit-flip",
            CorruptionKind::Decay => "decay",
        }
    }

    /// Whether write-protect hardware can bounce this kind (only actual
    /// writes go through the protection logic; media errors do not).
    pub fn respects_write_protect(&self) -> bool {
        matches!(self, CorruptionKind::StrayWrite)
    }
}

impl std::fmt::Display for CorruptionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Plan knobs for a corruption schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct CorruptionPlanConfig {
    /// Clients in the cluster (events target one board each).
    pub clients: u32,
    /// Trace duration events are placed within.
    pub duration: SimDuration,
    /// Stray-write scribbles to schedule.
    pub stray_writes: u32,
    /// Single-bit flips to schedule.
    pub bit_flips: u32,
    /// Whole-board decay events to schedule.
    pub decay_events: u32,
    /// Upper bound on one stray write's length in bytes.
    pub max_stray_bytes: u64,
}

impl CorruptionPlanConfig {
    /// A plan with no events scheduled; add kinds with the builders.
    pub fn new(clients: u32, duration: SimDuration) -> Self {
        CorruptionPlanConfig {
            clients,
            duration,
            stray_writes: 0,
            bit_flips: 0,
            decay_events: 0,
            max_stray_bytes: 64 * 1024,
        }
    }

    /// Sets the number of stray-write scribbles.
    pub fn with_stray_writes(mut self, n: u32) -> Self {
        self.stray_writes = n;
        self
    }

    /// Sets the number of single-bit flips.
    pub fn with_bit_flips(mut self, n: u32) -> Self {
        self.bit_flips = n;
        self
    }

    /// Sets the number of whole-board decay events.
    pub fn with_decay_events(mut self, n: u32) -> Self {
        self.decay_events = n;
        self
    }

    /// Sets the stray-write length cap (clamped up to
    /// [`MIN_STRAY_BYTES`]).
    pub fn with_max_stray_bytes(mut self, bytes: u64) -> Self {
        self.max_stray_bytes = bytes.max(MIN_STRAY_BYTES);
        self
    }

    /// Total events the plan schedules.
    pub fn total_events(&self) -> u32 {
        self.stray_writes + self.bit_flips + self.decay_events
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// [`FaultError::NoClients`] when events are requested for an empty
    /// cluster; [`FaultError::ZeroDuration`] when events are requested on
    /// a zero-length trace.
    pub fn validate(&self) -> Result<(), FaultError> {
        if self.total_events() == 0 {
            return Ok(());
        }
        if self.clients == 0 {
            return Err(FaultError::NoClients);
        }
        if self.duration == SimDuration::ZERO {
            return Err(FaultError::ZeroDuration);
        }
        Ok(())
    }
}

/// One scheduled corruption event against one client's board.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptionEvent {
    /// When the damage lands.
    pub time: SimTime,
    /// The client whose board is hit.
    pub client: ClientId,
    /// What kind of damage.
    pub kind: CorruptionKind,
    /// Where on the board, as a fraction of its capacity in `[0, 1)`.
    /// Decay events cover the whole board and carry `0.0`.
    pub offset_fraction: f64,
    /// Bytes scribbled for a stray write; `1` for a bit flip; `0` for
    /// decay (meaning "the whole board").
    pub len_bytes: u64,
    /// Schedule-unique sequence number (assigned after the chronological
    /// sort), used to derive the event's damage mask.
    pub seq: u64,
}

/// A compiled, chronologically sorted corruption schedule.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CorruptionSchedule {
    /// The seed the schedule was compiled from.
    pub seed: u64,
    /// The plan the schedule was compiled from.
    pub plan: CorruptionPlanConfig,
    /// Every event, sorted by `(time, client)`.
    pub events: Vec<CorruptionEvent>,
}

impl Default for CorruptionPlanConfig {
    fn default() -> Self {
        CorruptionPlanConfig::new(0, SimDuration::ZERO)
    }
}

impl CorruptionSchedule {
    /// Compiles the deterministic schedule for `(seed, plan)`.
    ///
    /// Each kind draws from its own stream, so per-kind knobs are
    /// independent: adding bit flips never moves a stray write.
    ///
    /// # Errors
    ///
    /// Returns a [`FaultError`] when the plan is inconsistent (see
    /// [`CorruptionPlanConfig::validate`]).
    pub fn compile(
        seed: u64,
        plan: &CorruptionPlanConfig,
    ) -> Result<CorruptionSchedule, FaultError> {
        plan.validate()?;
        let micros = plan.duration.as_micros().max(1);
        let mut events = Vec::with_capacity(plan.total_events() as usize);

        // Stray writes: uniform time, client, board offset and length.
        let mut rng = StdRng::seed_from_u64(seed ^ STREAM_STRAY);
        for _ in 0..plan.stray_writes {
            events.push(CorruptionEvent {
                time: SimTime::from_micros(rng.gen_range(0..micros)),
                client: ClientId(rng.gen_range(0..plan.clients)),
                kind: CorruptionKind::StrayWrite,
                offset_fraction: rng.gen::<f64>(),
                len_bytes: rng
                    .gen_range(MIN_STRAY_BYTES..=plan.max_stray_bytes.max(MIN_STRAY_BYTES)),
                seq: 0,
            });
        }

        // Bit flips: uniform time, client and board offset; one byte.
        let mut rng = StdRng::seed_from_u64(seed ^ STREAM_FLIP);
        for _ in 0..plan.bit_flips {
            events.push(CorruptionEvent {
                time: SimTime::from_micros(rng.gen_range(0..micros)),
                client: ClientId(rng.gen_range(0..plan.clients)),
                kind: CorruptionKind::BitFlip,
                offset_fraction: rng.gen::<f64>(),
                len_bytes: 1,
                seq: 0,
            });
        }

        // Decay: uniform time and client; the whole board is suspect.
        let mut rng = StdRng::seed_from_u64(seed ^ STREAM_DECAY);
        for _ in 0..plan.decay_events {
            events.push(CorruptionEvent {
                time: SimTime::from_micros(rng.gen_range(0..micros)),
                client: ClientId(rng.gen_range(0..plan.clients)),
                kind: CorruptionKind::Decay,
                offset_fraction: 0.0,
                len_bytes: 0,
                seq: 0,
            });
        }

        // Chronological order, then schedule-unique sequence numbers so
        // every event's damage mask is distinct and stable.
        events.sort_by_key(|e| (e.time, e.client, e.kind));
        for (i, e) in events.iter_mut().enumerate() {
            e.seq = i as u64;
        }

        nvfs_obs::counter_add("faults.corruption_schedules_compiled", 1);
        nvfs_obs::counter_add("faults.corruption_events_scheduled", events.len() as u64);

        Ok(CorruptionSchedule {
            seed,
            plan: plan.clone(),
            events,
        })
    }

    /// Events targeting `client`, in time order.
    pub fn events_for(&self, client: ClientId) -> impl Iterator<Item = &CorruptionEvent> {
        self.events.iter().filter(move |e| e.client == client)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> CorruptionPlanConfig {
        CorruptionPlanConfig::new(8, SimDuration::from_secs(3600))
            .with_stray_writes(4)
            .with_bit_flips(3)
            .with_decay_events(2)
    }

    #[test]
    fn compile_is_deterministic_and_sorted() {
        let a = CorruptionSchedule::compile(7, &plan()).unwrap();
        let b = CorruptionSchedule::compile(7, &plan()).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.events.len(), 9);
        assert!(a.events.windows(2).all(|w| w[0].time <= w[1].time));
        let seqs: Vec<u64> = a.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..9).collect::<Vec<u64>>(), "dense post-sort seqs");
    }

    #[test]
    fn seeds_differ() {
        let a = CorruptionSchedule::compile(1, &plan()).unwrap();
        let b = CorruptionSchedule::compile(2, &plan()).unwrap();
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn kind_knobs_are_stream_independent() {
        // Adding bit flips must not move the stray writes, and vice versa.
        let base = CorruptionSchedule::compile(42, &plan()).unwrap();
        let more_flips = CorruptionSchedule::compile(42, &plan().with_bit_flips(7)).unwrap();
        let strays = |s: &CorruptionSchedule| {
            s.events
                .iter()
                .filter(|e| e.kind == CorruptionKind::StrayWrite)
                .map(|e| (e.time, e.client, e.len_bytes))
                .collect::<Vec<_>>()
        };
        let decays = |s: &CorruptionSchedule| {
            s.events
                .iter()
                .filter(|e| e.kind == CorruptionKind::Decay)
                .map(|e| (e.time, e.client))
                .collect::<Vec<_>>()
        };
        assert_eq!(strays(&base), strays(&more_flips));
        assert_eq!(decays(&base), decays(&more_flips));
        let more_strays = CorruptionSchedule::compile(42, &plan().with_stray_writes(9)).unwrap();
        let flips = |s: &CorruptionSchedule| {
            s.events
                .iter()
                .filter(|e| e.kind == CorruptionKind::BitFlip)
                .map(|e| (e.time, e.client))
                .collect::<Vec<_>>()
        };
        assert_eq!(flips(&base), flips(&more_strays));
    }

    #[test]
    fn corruption_streams_do_not_touch_fault_streams() {
        // The whole point of the keying: a corruption plan compiled under
        // the same seed as a fault plan shares no draws with it.
        let faults = crate::FaultSchedule::compile(
            42,
            &crate::FaultPlanConfig::new(8, SimDuration::from_secs(3600)).with_client_crashes(3),
        )
        .unwrap();
        let _ = CorruptionSchedule::compile(42, &plan()).unwrap();
        let again = crate::FaultSchedule::compile(
            42,
            &crate::FaultPlanConfig::new(8, SimDuration::from_secs(3600)).with_client_crashes(3),
        )
        .unwrap();
        assert_eq!(faults, again, "fault schedules are pure of corruption");
    }

    #[test]
    fn event_shapes_match_their_kinds() {
        let s = CorruptionSchedule::compile(3, &plan()).unwrap();
        for e in &s.events {
            match e.kind {
                CorruptionKind::StrayWrite => {
                    assert!(e.len_bytes >= MIN_STRAY_BYTES);
                    assert!(e.len_bytes <= 64 * 1024);
                    assert!((0.0..1.0).contains(&e.offset_fraction));
                }
                CorruptionKind::BitFlip => {
                    assert_eq!(e.len_bytes, 1);
                    assert!((0.0..1.0).contains(&e.offset_fraction));
                }
                CorruptionKind::Decay => {
                    assert_eq!(e.len_bytes, 0);
                    assert_eq!(e.offset_fraction, 0.0);
                }
            }
            assert!(e.client.0 < 8);
            assert!(e.time <= SimTime::ZERO + SimDuration::from_secs(3600));
        }
    }

    #[test]
    fn empty_plan_compiles_empty_and_bad_plans_fail() {
        let empty = CorruptionPlanConfig::new(0, SimDuration::ZERO);
        assert!(CorruptionSchedule::compile(1, &empty)
            .unwrap()
            .events
            .is_empty());
        assert_eq!(
            CorruptionSchedule::compile(
                1,
                &CorruptionPlanConfig::new(0, SimDuration::from_secs(1)).with_bit_flips(1)
            ),
            Err(FaultError::NoClients)
        );
        assert_eq!(
            CorruptionSchedule::compile(
                1,
                &CorruptionPlanConfig::new(2, SimDuration::ZERO).with_stray_writes(1)
            ),
            Err(FaultError::ZeroDuration)
        );
    }

    #[test]
    fn events_for_filters_by_client() {
        let s = CorruptionSchedule::compile(11, &plan()).unwrap();
        let total: usize = (0..8).map(|c| s.events_for(ClientId(c)).count()).sum();
        assert_eq!(total, s.events.len());
        for c in 0..8 {
            assert!(s.events_for(ClientId(c)).all(|e| e.client == ClientId(c)));
        }
    }

    #[test]
    fn kind_labels_and_protection_interaction() {
        for kind in CorruptionKind::ALL {
            assert_eq!(kind.to_string(), kind.label());
        }
        assert!(CorruptionKind::StrayWrite.respects_write_protect());
        assert!(!CorruptionKind::BitFlip.respects_write_protect());
        assert!(!CorruptionKind::Decay.respects_write_protect());
    }

    #[test]
    fn stray_length_cap_is_clamped() {
        let p = CorruptionPlanConfig::new(2, SimDuration::from_secs(1)).with_max_stray_bytes(8);
        assert_eq!(p.max_stray_bytes, MIN_STRAY_BYTES);
    }
}
