//! Deterministic fault injection for the NVRAM reliability study.
//!
//! The paper's central claim is a *reliability* claim: NVRAM makes cached
//! writes "as permanent as data on disk" (§2.3, §4). The happy-path
//! simulators measure write traffic saved; this crate supplies the failure
//! schedules needed to measure **bytes lost under failure**, so the
//! volatile / write-aside / unified models can be compared on the axis the
//! paper actually argues about.
//!
//! A [`FaultSchedule`] is compiled from `(seed, FaultPlanConfig)` and is a
//! pure function of those inputs: the same pair yields byte-identical
//! schedules — and therefore byte-identical [`ReliabilityStats`] — on every
//! platform and at every worker-thread count. Consumers thread the schedule
//! through their replay loops:
//!
//! * the cluster simulator cuts a crashed client's trace at the fault time
//!   and routes its NVRAM contents through the §4 board-recovery flow;
//! * the LFS simulator loses its volatile dirty cache at a server crash and
//!   replays NVRAM-staged data on restart;
//! * board batteries age on the schedule's failure-rate clock instead of
//!   being killed by hand.
//!
//! # Determinism contract
//!
//! [`FaultSchedule::compile`] derives one independent RNG stream per fault
//! dimension (crash placement, battery lifetimes, torn writes, server
//! crashes) from the seed, so changing one plan knob — e.g. the number of
//! batteries per board — never perturbs the *other* dimensions: two models
//! compared under the same seed see the same crashes at the same times.
//!
//! # Examples
//!
//! ```
//! use nvfs_faults::{FaultPlanConfig, FaultSchedule};
//! use nvfs_types::SimDuration;
//!
//! let plan = FaultPlanConfig::new(8, SimDuration::from_secs(3600)).with_client_crashes(3);
//! let a = FaultSchedule::compile(42, &plan).unwrap();
//! let b = FaultSchedule::compile(42, &plan).unwrap();
//! assert_eq!(a, b, "same (seed, plan) => identical schedule");
//! assert_eq!(a.client_crashes.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

use nvfs_rng::{Rng, SeedableRng, StdRng};
use nvfs_types::{ClientId, SimDuration, SimTime};

pub mod corrupt;
pub mod net;

/// Battery cells sampled per board. Schedules always sample this many
/// lifetimes and boards keep the first [`FaultPlanConfig::board_batteries`]
/// of them, so redundancy choices never shift the other RNG streams.
pub const MAX_BOARD_BATTERIES: u8 = 3;

/// The kinds of fault the schedule can inject, for per-kind accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A client workstation crashed mid-trace.
    ClientCrash,
    /// A battery cell died on the failure-rate clock.
    BatteryFailure,
    /// A board drain or segment write was partially applied.
    TornWrite,
    /// The file server crashed, losing volatile buffer contents.
    ServerCrash,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::ClientCrash => "client-crash",
            FaultKind::BatteryFailure => "battery-failure",
            FaultKind::TornWrite => "torn-write",
            FaultKind::ServerCrash => "server-crash",
        };
        f.write_str(s)
    }
}

/// A fault plan could not be compiled or applied.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// Crashes were requested for a cluster with no clients.
    NoClients,
    /// More client crashes than clients: each client crashes at most once
    /// (its trace is cut at the fault time).
    TooManyCrashes {
        /// Crashes requested.
        crashes: u32,
        /// Clients available.
        clients: u32,
    },
    /// A board with zero batteries is just DRAM.
    NoBatteries,
    /// More batteries than the schedule samples lifetimes for.
    TooManyBatteries {
        /// Batteries requested.
        requested: u8,
    },
    /// A probability knob was outside `[0, 1]`.
    BadProbability {
        /// The offending value.
        value: f64,
    },
    /// Faults cannot be placed on a zero-length trace.
    ZeroDuration,
    /// Battery cells need a positive mean lifetime.
    ZeroMtbf,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::NoClients => write!(f, "client crashes requested but the plan has no clients"),
            FaultError::TooManyCrashes { crashes, clients } => write!(
                f,
                "{crashes} client crashes requested for {clients} clients (each client crashes at most once)"
            ),
            FaultError::NoBatteries => write!(f, "boards need at least one battery"),
            FaultError::TooManyBatteries { requested } => write!(
                f,
                "{requested} batteries requested, schedule samples at most {MAX_BOARD_BATTERIES}"
            ),
            FaultError::BadProbability { value } => {
                write!(f, "probability {value} outside [0, 1]")
            }
            FaultError::ZeroDuration => write!(f, "fault plan needs a positive trace duration"),
            FaultError::ZeroMtbf => write!(f, "battery mean lifetime must be positive"),
        }
    }
}

impl Error for FaultError {}

/// Tunable knobs a [`FaultSchedule`] is compiled from.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlanConfig {
    /// Number of client workstations in the workload.
    pub clients: u32,
    /// Length of the trace the faults are placed on.
    pub duration: SimDuration,
    /// Number of client crash events (at most one per client).
    pub client_crashes: u32,
    /// Redundant battery cells per recovery board (Table 1: SIMM-style
    /// parts carry one or two, boards are triply redundant).
    pub board_batteries: u8,
    /// Mean battery-cell lifetime on the (accelerated) failure clock.
    /// Real lithium cells live ~10 years; reliability runs compress that
    /// so battery death is observable within a trace.
    pub battery_mtbf: SimDuration,
    /// Mean delay between a client crash and its board being reinstalled
    /// in a healthy workstation (§4's "move an NVRAM component").
    pub relocation_delay: SimDuration,
    /// Number of file-server crash events for the LFS study.
    pub server_crashes: u32,
    /// Number of WAL-mode server crash events (the write-ahead-log commit
    /// path has its own crash-point lattice, see [`WalCrashPoint`]).
    pub wal_crashes: u32,
    /// Probability that a recovery drain or restart segment write is torn
    /// (partially applied).
    pub torn_write_probability: f64,
}

impl FaultPlanConfig {
    /// A plan over `clients` workstations and a trace of `duration`, with
    /// no faults enabled. Enable dimensions with the `with_*` builders.
    pub fn new(clients: u32, duration: SimDuration) -> Self {
        FaultPlanConfig {
            clients,
            duration,
            client_crashes: 0,
            board_batteries: MAX_BOARD_BATTERIES,
            battery_mtbf: SimDuration::from_secs(24 * 3600),
            relocation_delay: SimDuration::from_secs(600),
            server_crashes: 0,
            wal_crashes: 0,
            torn_write_probability: 0.0,
        }
    }

    /// Sets the number of client crash events (builder style).
    pub fn with_client_crashes(mut self, n: u32) -> Self {
        self.client_crashes = n;
        self
    }

    /// Sets board battery redundancy (builder style).
    pub fn with_batteries(mut self, n: u8) -> Self {
        self.board_batteries = n;
        self
    }

    /// Sets the mean battery-cell lifetime (builder style).
    pub fn with_battery_mtbf(mut self, mtbf: SimDuration) -> Self {
        self.battery_mtbf = mtbf;
        self
    }

    /// Sets the mean board relocation delay (builder style).
    pub fn with_relocation_delay(mut self, delay: SimDuration) -> Self {
        self.relocation_delay = delay;
        self
    }

    /// Sets the number of server crash events (builder style).
    pub fn with_server_crashes(mut self, n: u32) -> Self {
        self.server_crashes = n;
        self
    }

    /// Sets the torn-write probability (builder style).
    pub fn with_torn_probability(mut self, p: f64) -> Self {
        self.torn_write_probability = p;
        self
    }

    /// Sets the number of WAL-mode server crash events (builder style).
    pub fn with_wal_crashes(mut self, n: u32) -> Self {
        self.wal_crashes = n;
        self
    }

    fn validate(&self) -> Result<(), FaultError> {
        if self.client_crashes > 0 && self.clients == 0 {
            return Err(FaultError::NoClients);
        }
        if self.client_crashes > self.clients {
            return Err(FaultError::TooManyCrashes {
                crashes: self.client_crashes,
                clients: self.clients,
            });
        }
        if self.board_batteries == 0 {
            return Err(FaultError::NoBatteries);
        }
        if self.board_batteries > MAX_BOARD_BATTERIES {
            return Err(FaultError::TooManyBatteries {
                requested: self.board_batteries,
            });
        }
        if !(0.0..=1.0).contains(&self.torn_write_probability) {
            return Err(FaultError::BadProbability {
                value: self.torn_write_probability,
            });
        }
        if (self.client_crashes > 0 || self.server_crashes > 0 || self.wal_crashes > 0)
            && self.duration == SimDuration::ZERO
        {
            return Err(FaultError::ZeroDuration);
        }
        if self.battery_mtbf == SimDuration::ZERO {
            return Err(FaultError::ZeroMtbf);
        }
        Ok(())
    }
}

/// One scheduled client crash with everything needed to replay §4 recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientCrashFault {
    /// When the workstation dies; its trace is cut here.
    pub time: SimTime,
    /// The crashed client.
    pub client: ClientId,
    /// Delay until the board is reinstalled in a healthy client.
    pub relocation_delay: SimDuration,
    /// Absolute failure time of each battery cell on the board, sorted.
    /// Only the first `board_batteries` entries apply.
    pub battery_failures: Vec<SimTime>,
    /// `Some(fraction)` if the recovery drain is torn: only `fraction` of
    /// the board's bytes are applied before the drain is cut short.
    pub torn_drain: Option<f64>,
    /// `Some(n)` pins the torn drain to an exact budget of `n` 4 KB
    /// blocks, overriding [`torn_drain`](ClientCrashFault::torn_drain).
    /// Compiled schedules always leave this `None`; the crash-point sweep
    /// sets it to enumerate mid-drain cuts block by block.
    pub torn_drain_blocks: Option<u64>,
}

impl ClientCrashFault {
    /// When the board is drained on its new host.
    pub fn recovery_time(&self) -> SimTime {
        self.time.saturating_add(self.relocation_delay)
    }

    /// The battery failure clock restricted to the plan's redundancy.
    pub fn battery_clock(&self, board_batteries: u8) -> &[SimTime] {
        &self.battery_failures[..board_batteries.min(MAX_BOARD_BATTERIES) as usize]
    }
}

/// One scheduled file-server crash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerCrashFault {
    /// When the server dies.
    pub time: SimTime,
    /// `Some(fraction)` if the restart replay's final segment write is torn
    /// and `fraction` of it must be written again.
    pub torn_segment: Option<f64>,
}

/// Where in the WAL commit protocol a server crash lands. The four points
/// cover every boundary of the append → writeback → truncate cycle; the
/// durability oracle sweeps all of them in `nvfs verify-crash`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalCrashPoint {
    /// The crash interrupts an append at the frame boundary: only the
    /// record header reaches NVRAM. The fsync was never acknowledged, so
    /// the bytes are not promised; roll-forward must truncate the frame.
    MidAppend,
    /// The record is durably appended (and therefore promised) but the
    /// crash lands before any segment writeback: recovery must replay it.
    PostAppend,
    /// A drain's segment writes completed but the crash interrupts log
    /// truncation: already-drained records survive in the log, and their
    /// re-replay on recovery must be idempotent.
    MidTruncation,
    /// The crash tears the tail record mid-payload: the frame looks whole
    /// but its checksum fails, and roll-forward must truncate it.
    TornRecord,
}

impl WalCrashPoint {
    /// Every WAL crash point, in protocol order.
    pub const ALL: [WalCrashPoint; 4] = [
        WalCrashPoint::MidAppend,
        WalCrashPoint::PostAppend,
        WalCrashPoint::MidTruncation,
        WalCrashPoint::TornRecord,
    ];

    /// Short static label for reports and events.
    pub fn label(&self) -> &'static str {
        match self {
            WalCrashPoint::MidAppend => "mid-append",
            WalCrashPoint::PostAppend => "post-append",
            WalCrashPoint::MidTruncation => "mid-truncation",
            WalCrashPoint::TornRecord => "torn-record",
        }
    }
}

impl fmt::Display for WalCrashPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One scheduled WAL-mode server crash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalCrashFault {
    /// When the server dies.
    pub time: SimTime,
    /// Where in the commit protocol the crash lands.
    pub point: WalCrashPoint,
}

/// A compiled, deterministic fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    /// The seed the schedule was compiled from.
    pub seed: u64,
    /// The plan the schedule was compiled from.
    pub plan: FaultPlanConfig,
    /// Client crashes, sorted by time.
    pub client_crashes: Vec<ClientCrashFault>,
    /// Server crashes, sorted by time.
    pub server_crashes: Vec<ServerCrashFault>,
    /// WAL-mode server crashes, sorted by time.
    pub wal_crashes: Vec<WalCrashFault>,
}

/// Stream-splitting constants: each fault dimension draws from its own RNG
/// so plan knobs never perturb unrelated dimensions.
const STREAM_CRASH: u64 = 0x632d_6372_6173_6801; // "c-crash"
const STREAM_BATTERY: u64 = 0x6261_7474_6572_7902; // "battery"
const STREAM_TORN: u64 = 0x746f_726e_2d77_7203; // "torn-wr"
const STREAM_SERVER: u64 = 0x7365_7276_6572_6304; // "serverc"
const STREAM_WAL: u64 = 0x7761_6c2d_6c6f_6705; // "wal-log"

impl FaultSchedule {
    /// Compiles the deterministic schedule for `(seed, plan)`.
    ///
    /// # Errors
    ///
    /// Returns a [`FaultError`] when the plan is internally inconsistent
    /// (more crashes than clients, zero batteries, probabilities outside
    /// `[0, 1]`, …).
    pub fn compile(seed: u64, plan: &FaultPlanConfig) -> Result<FaultSchedule, FaultError> {
        plan.validate()?;
        let micros = plan.duration.as_micros().max(1);

        // Crash placement: choose distinct clients by partial Fisher-Yates,
        // then a uniform crash time and relocation delay for each.
        let mut rng = StdRng::seed_from_u64(seed ^ STREAM_CRASH);
        let mut pool: Vec<u32> = (0..plan.clients).collect();
        let mut client_crashes = Vec::with_capacity(plan.client_crashes as usize);
        for i in 0..plan.client_crashes as usize {
            let j = rng.gen_range(i..pool.len());
            pool.swap(i, j);
            let time = SimTime::from_micros(rng.gen_range(0..micros));
            let mean = plan.relocation_delay.as_micros();
            let delay = SimDuration::from_micros(rng.gen_range(mean / 2..=mean + mean / 2));
            client_crashes.push(ClientCrashFault {
                time,
                client: ClientId(pool[i]),
                relocation_delay: delay,
                battery_failures: Vec::new(),
                torn_drain: None,
                torn_drain_blocks: None,
            });
        }

        // Battery lifetimes: exponential with the plan's (accelerated)
        // MTBF, always MAX_BOARD_BATTERIES samples per crash so redundancy
        // choices don't shift later draws.
        let mut rng = StdRng::seed_from_u64(seed ^ STREAM_BATTERY);
        for crash in &mut client_crashes {
            let mut cells: Vec<SimTime> = (0..MAX_BOARD_BATTERIES)
                .map(|_| {
                    let u: f64 = rng.gen();
                    let life = -(1.0 - u).ln() * plan.battery_mtbf.as_micros() as f64;
                    SimTime::from_micros(life.min(u64::MAX as f64 / 2.0) as u64)
                })
                .collect();
            cells.sort();
            crash.battery_failures = cells;
        }

        // Torn writes: one draw per client crash, then one per server crash.
        let mut rng = StdRng::seed_from_u64(seed ^ STREAM_TORN);
        for crash in &mut client_crashes {
            if rng.gen_bool(plan.torn_write_probability) {
                crash.torn_drain = Some(rng.gen_range(0.1..0.9));
            }
        }
        let mut server_torn = Vec::with_capacity(plan.server_crashes as usize);
        for _ in 0..plan.server_crashes {
            server_torn.push(if rng.gen_bool(plan.torn_write_probability) {
                Some(rng.gen_range(0.1..0.9))
            } else {
                None
            });
        }

        // Server crashes.
        let mut rng = StdRng::seed_from_u64(seed ^ STREAM_SERVER);
        let mut server_crashes: Vec<ServerCrashFault> = server_torn
            .into_iter()
            .map(|torn_segment| ServerCrashFault {
                time: SimTime::from_micros(rng.gen_range(0..micros)),
                torn_segment,
            })
            .collect();

        // WAL-mode server crashes: a uniform time per event, cycling through
        // the crash-point lattice so every point is hit before any repeats.
        let mut rng = StdRng::seed_from_u64(seed ^ STREAM_WAL);
        let mut wal_crashes: Vec<WalCrashFault> = (0..plan.wal_crashes as usize)
            .map(|i| WalCrashFault {
                time: SimTime::from_micros(rng.gen_range(0..micros)),
                point: WalCrashPoint::ALL[i % WalCrashPoint::ALL.len()],
            })
            .collect();

        client_crashes.sort_by_key(|c| (c.time, c.client.0));
        server_crashes.sort_by_key(|a| a.time);
        wal_crashes.sort_by_key(|a| a.time);
        nvfs_obs::counter_add("faults.schedules_compiled", 1);
        nvfs_obs::counter_add(
            "faults.client_crashes_scheduled",
            client_crashes.len() as u64,
        );
        nvfs_obs::counter_add(
            "faults.server_crashes_scheduled",
            server_crashes.len() as u64,
        );
        if !wal_crashes.is_empty() {
            nvfs_obs::counter_add("faults.wal_crashes_scheduled", wal_crashes.len() as u64);
        }
        Ok(FaultSchedule {
            seed,
            plan: plan.clone(),
            client_crashes,
            server_crashes,
            wal_crashes,
        })
    }
}

/// One boundary class the durability-oracle crash-point sweep pins every
/// scheduled client crash to. From a single compiled `(seed, plan)`
/// schedule, [`FaultSchedule::apply_crash_point`] derives one variant
/// schedule per kind, so the sweep explores every interesting recovery
/// boundary without perturbing crash placement or any other RNG stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPointKind {
    /// Healthy board, untorn drain: the baseline full recovery.
    FullDrain,
    /// The drain is cut after exactly `n` 4 KB blocks — swept over
    /// `0..=board blocks` to hit every mid-drain boundary.
    TornDrainBlocks(u64),
    /// Every battery cell dies before the board is drained: recovery must
    /// return nothing.
    DeadBoard,
    /// Every battery cell dies one microsecond *after* the drain: the
    /// closest surviving edge of battery death.
    BatteryEdgeAlive,
    /// The crash lands one microsecond before the next flush-tick
    /// boundary, maximising data still dirty in the cache.
    PreFlush,
    /// The crash lands one microsecond after the flush-tick boundary.
    PostFlush,
}

impl CrashPointKind {
    /// Short static label for reports and events.
    pub fn label(&self) -> &'static str {
        match self {
            CrashPointKind::FullDrain => "full-drain",
            CrashPointKind::TornDrainBlocks(_) => "mid-drain",
            CrashPointKind::DeadBoard => "dead-board",
            CrashPointKind::BatteryEdgeAlive => "battery-edge",
            CrashPointKind::PreFlush => "pre-flush",
            CrashPointKind::PostFlush => "post-flush",
        }
    }
}

impl fmt::Display for CrashPointKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrashPointKind::TornDrainBlocks(n) => write!(f, "mid-drain@{n}blk"),
            other => f.write_str(other.label()),
        }
    }
}

impl FaultSchedule {
    /// Derives the crash-point variant of this schedule for `kind`: every
    /// scheduled client crash is pinned to that boundary while everything
    /// else (crash clients, relocation delays, server crashes) is kept
    /// verbatim. `flush_tick` is the consumer's flush cadence (e.g. the
    /// cluster simulator's 5-second cleaner period), used to place the
    /// pre-/post-flush edges.
    pub fn apply_crash_point(
        &self,
        kind: CrashPointKind,
        flush_tick: SimDuration,
    ) -> FaultSchedule {
        let mut out = self.clone();
        for crash in &mut out.client_crashes {
            match kind {
                CrashPointKind::FullDrain => {
                    crash.torn_drain = None;
                    crash.torn_drain_blocks = None;
                }
                CrashPointKind::TornDrainBlocks(n) => {
                    crash.torn_drain = None;
                    crash.torn_drain_blocks = Some(n);
                }
                CrashPointKind::DeadBoard => {
                    for cell in &mut crash.battery_failures {
                        *cell = SimTime::ZERO;
                    }
                }
                CrashPointKind::BatteryEdgeAlive => {
                    let edge = crash
                        .recovery_time()
                        .saturating_add(SimDuration::from_micros(1));
                    for cell in &mut crash.battery_failures {
                        *cell = edge;
                    }
                }
                CrashPointKind::PreFlush | CrashPointKind::PostFlush => {
                    let tick = flush_tick.as_micros().max(1);
                    let next = (crash.time.as_micros() / tick + 1) * tick;
                    crash.time = match kind {
                        CrashPointKind::PreFlush => SimTime::from_micros(next.saturating_sub(1)),
                        _ => SimTime::from_micros(next.saturating_add(1)),
                    };
                }
            }
        }
        out.client_crashes.sort_by_key(|c| (c.time, c.client.0));
        out
    }
}

/// End-to-end crash/recovery accounting for one run, per fault kind.
///
/// All fields are byte or event counts, so two runs can be compared for
/// determinism with `==` and per-model results merged with [`merge`].
///
/// [`merge`]: ReliabilityStats::merge
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReliabilityStats {
    /// Client crash events executed.
    pub client_crashes: u64,
    /// Server crash events executed.
    pub server_crashes: u64,
    /// Dirty bytes held by crashed clients at their crash instants — the
    /// bytes the paper's reliability argument is about.
    pub bytes_at_risk: u64,
    /// …of which: preserved in NVRAM at crash time (snapshot onto a board).
    pub bytes_in_nvram: u64,
    /// Bytes a recovery drain turned back into durable server writes.
    pub bytes_recovered: u64,
    /// Bytes lost because they sat in a volatile cache when the client
    /// died (the paper's 30-second delayed-write window, §2.3).
    pub bytes_lost_window: u64,
    /// Bytes lost because every board battery had died before recovery.
    pub bytes_lost_battery: u64,
    /// Bytes lost to torn (partially applied) drains or segment writes.
    pub bytes_lost_torn: u64,
    /// Server-side bytes lost from the volatile dirty buffer at a server
    /// crash (data not yet staged to NVRAM or disk).
    pub bytes_lost_buffer: u64,
    /// Server-side NVRAM-staged bytes replayed into the log on restart.
    pub bytes_replayed: u64,
    /// Server-side bytes a torn replay segment write had to write a second
    /// time (wasted disk work; nothing is lost because NVRAM still holds
    /// the data).
    pub bytes_rewritten_torn: u64,
    /// Boards drained successfully (batteries held).
    pub boards_recovered: u64,
    /// Boards found dead at recovery time.
    pub boards_dead: u64,
    /// Bytes a cache model was forced to push toward an unreachable server
    /// while a network partition was open (shed on the wire; only the
    /// degraded-mode network runs of PR 7 populate this).
    pub bytes_lost_partition: u64,
}

impl ReliabilityStats {
    /// Total bytes lost across every fault kind.
    pub fn bytes_lost(&self) -> u64 {
        self.bytes_lost_window
            + self.bytes_lost_battery
            + self.bytes_lost_torn
            + self.bytes_lost_buffer
            + self.bytes_lost_partition
    }

    /// Bytes lost as a percentage of bytes at risk (0 when nothing was at
    /// risk).
    pub fn loss_pct(&self) -> f64 {
        let at_risk = self.bytes_at_risk + self.bytes_lost_buffer + self.bytes_replayed;
        if at_risk == 0 {
            return 0.0;
        }
        100.0 * self.bytes_lost() as f64 / at_risk as f64
    }

    /// Folds another run's accounting into this one.
    pub fn merge(&mut self, other: &ReliabilityStats) {
        self.client_crashes += other.client_crashes;
        self.server_crashes += other.server_crashes;
        self.bytes_at_risk += other.bytes_at_risk;
        self.bytes_in_nvram += other.bytes_in_nvram;
        self.bytes_recovered += other.bytes_recovered;
        self.bytes_lost_window += other.bytes_lost_window;
        self.bytes_lost_battery += other.bytes_lost_battery;
        self.bytes_lost_torn += other.bytes_lost_torn;
        self.bytes_lost_buffer += other.bytes_lost_buffer;
        self.bytes_replayed += other.bytes_replayed;
        self.bytes_rewritten_torn += other.bytes_rewritten_torn;
        self.boards_recovered += other.boards_recovered;
        self.boards_dead += other.boards_dead;
        self.bytes_lost_partition += other.bytes_lost_partition;
    }

    /// Folds this run's accounting into the `faults.*` counters of the
    /// `nvfs-obs` metrics registry (once per completed run).
    pub fn fold_into_obs(&self) {
        use nvfs_obs::counter_add;
        counter_add("faults.client_crashes", self.client_crashes);
        counter_add("faults.server_crashes", self.server_crashes);
        counter_add("faults.bytes_at_risk", self.bytes_at_risk);
        counter_add("faults.bytes_in_nvram", self.bytes_in_nvram);
        counter_add("faults.bytes_recovered", self.bytes_recovered);
        counter_add("faults.bytes_lost_window", self.bytes_lost_window);
        counter_add("faults.bytes_lost_battery", self.bytes_lost_battery);
        counter_add("faults.bytes_lost_torn", self.bytes_lost_torn);
        counter_add("faults.bytes_lost_buffer", self.bytes_lost_buffer);
        counter_add("faults.bytes_replayed", self.bytes_replayed);
        counter_add("faults.bytes_rewritten_torn", self.bytes_rewritten_torn);
        counter_add("faults.boards_recovered", self.boards_recovered);
        counter_add("faults.boards_dead", self.boards_dead);
        // Guarded so crash-only runs keep their manifests byte-identical:
        // the counter exists only when a network run actually shed bytes.
        if self.bytes_lost_partition > 0 {
            counter_add("faults.bytes_lost_partition", self.bytes_lost_partition);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlanConfig {
        FaultPlanConfig::new(8, SimDuration::from_secs(3600))
            .with_client_crashes(4)
            .with_server_crashes(2)
            .with_torn_probability(0.5)
    }

    #[test]
    fn compile_is_deterministic() {
        let a = FaultSchedule::compile(1992, &plan()).unwrap();
        let b = FaultSchedule::compile(1992, &plan()).unwrap();
        assert_eq!(a, b);
        let c = FaultSchedule::compile(1993, &plan()).unwrap();
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn crashes_hit_distinct_clients_in_time_order() {
        let s = FaultSchedule::compile(7, &plan()).unwrap();
        let mut clients: Vec<u32> = s.client_crashes.iter().map(|c| c.client.0).collect();
        clients.sort_unstable();
        clients.dedup();
        assert_eq!(clients.len(), 4, "each client crashes at most once");
        assert!(s.client_crashes.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(s
            .client_crashes
            .iter()
            .all(|c| c.time <= SimTime::ZERO + SimDuration::from_secs(3600)));
    }

    #[test]
    fn wal_crashes_cycle_the_point_lattice_in_time_order() {
        let s = FaultSchedule::compile(7, &plan().with_wal_crashes(6)).unwrap();
        assert_eq!(s.wal_crashes.len(), 6);
        assert!(s.wal_crashes.windows(2).all(|w| w[0].time <= w[1].time));
        // Before sorting by time the points cycle the lattice, so every
        // point appears at least once in any batch of >= 4.
        for point in WalCrashPoint::ALL {
            assert!(
                s.wal_crashes.iter().any(|c| c.point == point),
                "missing {point}"
            );
        }
        // The WAL stream is independent: plain plans are unperturbed.
        let plain = FaultSchedule::compile(7, &plan()).unwrap();
        assert!(plain.wal_crashes.is_empty());
        assert_eq!(plain.client_crashes, s.client_crashes);
        assert_eq!(plain.server_crashes, s.server_crashes);
    }

    #[test]
    fn battery_clock_is_sorted_and_redundancy_is_a_view() {
        let s = FaultSchedule::compile(11, &plan()).unwrap();
        for c in &s.client_crashes {
            assert_eq!(c.battery_failures.len(), MAX_BOARD_BATTERIES as usize);
            assert!(c.battery_failures.windows(2).all(|w| w[0] <= w[1]));
            assert_eq!(c.battery_clock(1).len(), 1);
            assert_eq!(c.battery_clock(3).len(), 3);
        }
    }

    #[test]
    fn redundancy_choice_does_not_move_crash_times() {
        let one = FaultSchedule::compile(42, &plan().with_batteries(1)).unwrap();
        let three = FaultSchedule::compile(42, &plan().with_batteries(3)).unwrap();
        for (a, b) in one.client_crashes.iter().zip(&three.client_crashes) {
            assert_eq!((a.time, a.client), (b.time, b.client));
            assert_eq!(a.battery_failures, b.battery_failures);
        }
        assert_eq!(one.server_crashes, three.server_crashes);
    }

    #[test]
    fn invalid_plans_are_typed_errors() {
        let d = SimDuration::from_secs(10);
        assert_eq!(
            FaultSchedule::compile(0, &FaultPlanConfig::new(0, d).with_client_crashes(1)),
            Err(FaultError::NoClients)
        );
        assert_eq!(
            FaultSchedule::compile(0, &FaultPlanConfig::new(2, d).with_client_crashes(3)),
            Err(FaultError::TooManyCrashes {
                crashes: 3,
                clients: 2
            })
        );
        assert_eq!(
            FaultSchedule::compile(0, &FaultPlanConfig::new(2, d).with_batteries(0)),
            Err(FaultError::NoBatteries)
        );
        assert_eq!(
            FaultSchedule::compile(0, &FaultPlanConfig::new(2, d).with_batteries(9)),
            Err(FaultError::TooManyBatteries { requested: 9 })
        );
        assert_eq!(
            FaultSchedule::compile(0, &FaultPlanConfig::new(2, d).with_torn_probability(1.5)),
            Err(FaultError::BadProbability { value: 1.5 })
        );
        assert_eq!(
            FaultSchedule::compile(
                0,
                &FaultPlanConfig::new(2, SimDuration::ZERO).with_client_crashes(1)
            ),
            Err(FaultError::ZeroDuration)
        );
        let err = FaultError::TooManyCrashes {
            crashes: 3,
            clients: 2,
        };
        assert!(err.to_string().contains("3 client crashes"));
    }

    #[test]
    fn reliability_stats_merge_and_totals() {
        let mut a = ReliabilityStats {
            client_crashes: 1,
            bytes_at_risk: 100,
            bytes_recovered: 60,
            bytes_lost_window: 40,
            ..ReliabilityStats::default()
        };
        let b = ReliabilityStats {
            client_crashes: 1,
            bytes_at_risk: 50,
            bytes_lost_battery: 30,
            bytes_lost_torn: 20,
            ..ReliabilityStats::default()
        };
        a.merge(&b);
        assert_eq!(a.client_crashes, 2);
        assert_eq!(a.bytes_at_risk, 150);
        assert_eq!(a.bytes_lost(), 90);
        assert_eq!(a.loss_pct(), 60.0);
        assert_eq!(ReliabilityStats::default().loss_pct(), 0.0);
    }

    #[test]
    fn zero_duration_compiles_when_nothing_is_scheduled() {
        // A zero-length trace with no crash events is a valid (empty)
        // plan; the same duration with any crash is a typed error, and
        // neither case may panic.
        let empty = FaultPlanConfig::new(4, SimDuration::ZERO);
        let s = FaultSchedule::compile(3, &empty).unwrap();
        assert!(s.client_crashes.is_empty());
        assert!(s.server_crashes.is_empty());
        assert_eq!(
            FaultSchedule::compile(3, &empty.clone().with_server_crashes(1)),
            Err(FaultError::ZeroDuration)
        );
    }

    #[test]
    fn zero_clients_supports_server_only_plans() {
        // `clients == 0` is how the LFS server study runs: client crashes
        // are impossible, server crashes are fine.
        let plan = FaultPlanConfig::new(0, SimDuration::from_secs(100)).with_server_crashes(3);
        let s = FaultSchedule::compile(5, &plan).unwrap();
        assert!(s.client_crashes.is_empty());
        assert_eq!(s.server_crashes.len(), 3);
    }

    #[test]
    fn torn_probability_one_tears_every_fault() {
        let plan = FaultPlanConfig::new(8, SimDuration::from_secs(3600))
            .with_client_crashes(8)
            .with_server_crashes(4)
            .with_torn_probability(1.0);
        let s = FaultSchedule::compile(13, &plan).unwrap();
        assert!(s.client_crashes.iter().all(|c| c.torn_drain.is_some()));
        assert!(s.server_crashes.iter().all(|c| c.torn_segment.is_some()));
        for c in &s.client_crashes {
            let f = c.torn_drain.unwrap();
            assert!((0.1..0.9).contains(&f), "fraction {f} outside draw range");
            assert_eq!(c.torn_drain_blocks, None, "compile never pins blocks");
        }
        // …and probability zero tears nothing, with no panic at either edge.
        let s = FaultSchedule::compile(13, &plan.with_torn_probability(0.0)).unwrap();
        assert!(s.client_crashes.iter().all(|c| c.torn_drain.is_none()));
        assert!(s.server_crashes.iter().all(|c| c.torn_segment.is_none()));
    }

    #[test]
    fn single_battery_boards_compile_with_full_sample() {
        let plan = FaultPlanConfig::new(4, SimDuration::from_secs(3600))
            .with_client_crashes(2)
            .with_batteries(1);
        let s = FaultSchedule::compile(21, &plan).unwrap();
        for c in &s.client_crashes {
            // The sample is always MAX_BOARD_BATTERIES wide; redundancy is
            // a view, so a 1-battery board sees only the earliest death.
            assert_eq!(c.battery_failures.len(), MAX_BOARD_BATTERIES as usize);
            assert_eq!(c.battery_clock(1), &c.battery_failures[..1]);
        }
        assert_eq!(
            FaultSchedule::compile(
                21,
                &FaultPlanConfig::new(4, SimDuration::from_secs(1))
                    .with_battery_mtbf(SimDuration::ZERO)
            ),
            Err(FaultError::ZeroMtbf)
        );
    }

    #[test]
    fn crash_points_pin_only_their_own_dimension() {
        let base = FaultSchedule::compile(42, &plan()).unwrap();
        let tick = SimDuration::from_secs(5);

        let full = base.apply_crash_point(CrashPointKind::FullDrain, tick);
        assert!(full
            .client_crashes
            .iter()
            .all(|c| c.torn_drain.is_none() && c.torn_drain_blocks.is_none()));

        let torn = base.apply_crash_point(CrashPointKind::TornDrainBlocks(2), tick);
        assert!(torn
            .client_crashes
            .iter()
            .all(|c| c.torn_drain_blocks == Some(2) && c.torn_drain.is_none()));
        // Crash placement is untouched.
        for (a, b) in base.client_crashes.iter().zip(&torn.client_crashes) {
            assert_eq!((a.time, a.client), (b.time, b.client));
        }

        let dead = base.apply_crash_point(CrashPointKind::DeadBoard, tick);
        assert!(dead
            .client_crashes
            .iter()
            .all(|c| c.battery_failures.iter().all(|&t| t == SimTime::ZERO)));

        let alive = base.apply_crash_point(CrashPointKind::BatteryEdgeAlive, tick);
        for c in &alive.client_crashes {
            let edge = c
                .recovery_time()
                .saturating_add(SimDuration::from_micros(1));
            assert!(c.battery_failures.iter().all(|&t| t == edge));
        }

        for kind in [CrashPointKind::PreFlush, CrashPointKind::PostFlush] {
            let nudged = base.apply_crash_point(kind, tick);
            for c in &nudged.client_crashes {
                let off = c.time.as_micros() % tick.as_micros();
                let expect = match kind {
                    CrashPointKind::PreFlush => tick.as_micros() - 1,
                    _ => 1,
                };
                assert_eq!(off, expect, "{kind}: crash not on the flush edge");
            }
            assert!(nudged
                .client_crashes
                .windows(2)
                .all(|w| (w[0].time, w[0].client.0) <= (w[1].time, w[1].client.0)));
        }
        assert_eq!(
            CrashPointKind::TornDrainBlocks(3).to_string(),
            "mid-drain@3blk"
        );
        assert_eq!(CrashPointKind::DeadBoard.label(), "dead-board");
    }

    #[test]
    fn fault_kind_display() {
        assert_eq!(FaultKind::ClientCrash.to_string(), "client-crash");
        assert_eq!(FaultKind::ServerCrash.to_string(), "server-crash");
        assert_eq!(FaultKind::BatteryFailure.to_string(), "battery-failure");
        assert_eq!(FaultKind::TornWrite.to_string(), "torn-write");
    }
}
