//! Nesting-safe wall-clock spans.
//!
//! [`timed`] measures a closure and reports both **inclusive** wall time
//! and **exclusive** wall time (inclusive minus same-thread child spans).
//! Exclusive time is what fixes the old `bench` double-count: a phase
//! timed inside another phase no longer bills its milliseconds twice.
//! Nesting is tracked per thread — spans running inside `par_map` tasks
//! subtract their own children, not their siblings on other threads.
//!
//! Wall-clock values are inherently nondeterministic, so span records are
//! **never** merged into the metrics registry: they flow into the run
//! manifest's volatile `meta` section. Only the span *names*, in
//! submission order, enter the deterministic `run` section. When tracing
//! is enabled each span additionally emits `span` begin/end events (at
//! `t_us = 0`, outside simulated time).
//!
//! Per-task totals from `nvfs-par` land here too, via [`add_task_wall`]:
//! a cumulative task count and wall-clock sum, reported in manifest meta.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::sink;

/// One completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (e.g. a bench stage or CLI phase).
    pub name: String,
    /// Inclusive wall-clock milliseconds.
    pub wall_ms: f64,
    /// Exclusive wall-clock milliseconds (children subtracted).
    pub excl_ms: f64,
    /// Simulated microseconds covered, when the caller noted them via
    /// [`set_span_sim_us`]; 0 otherwise.
    pub sim_us: u64,
}

thread_local! {
    /// Child wall ms accumulated by each open span on this thread.
    static STACK: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// High-water mark of simulated time noted via [`set_span_sim_us`].
///
/// A process-global **max** rather than a per-span slot: simulation work
/// often runs on `nvfs-par` worker threads, where a thread-local span
/// stack would silently drop the note (and make the recorded value depend
/// on `--jobs`). `max` is commutative, so the value a span observes is
/// identical at any job count.
static SIM_MAX: AtomicU64 = AtomicU64::new(0);

/// Runs `f` inside a named span, recording a [`SpanRecord`] into the
/// current task shard and returning it alongside the result.
pub fn timed<R>(name: &str, f: impl FnOnce() -> R) -> (R, SpanRecord) {
    crate::events::event("span", 0)
        .owned("name", name)
        .str("phase", "begin")
        .emit();
    STACK.with(|s| s.borrow_mut().push(0.0));
    let sim_at_open = SIM_MAX.load(Ordering::Relaxed);
    let start = Instant::now();
    let out = f();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let sim_at_close = SIM_MAX.load(Ordering::Relaxed);
    let child_ms = STACK.with(|s| s.borrow_mut().pop()).unwrap_or(0.0);
    STACK.with(|s| {
        if let Some(parent_child_ms) = s.borrow_mut().last_mut() {
            *parent_child_ms += wall_ms;
        }
    });
    let record = SpanRecord {
        name: name.to_string(),
        wall_ms,
        excl_ms: (wall_ms - child_ms).max(0.0),
        sim_us: if sim_at_close > sim_at_open {
            sim_at_close
        } else {
            0
        },
    };
    sink::with_local(|l| l.spans.push(record.clone()));
    crate::events::event("span", 0)
        .owned("name", name)
        .str("phase", "end")
        .emit();
    (out, record)
}

/// Runs `f` inside a named span, discarding the record (it is still
/// collected for the manifest).
pub fn span<R>(name: &str, f: impl FnOnce() -> R) -> R {
    timed(name, f).0
}

/// Notes simulated time reached by the running workload. Every span open
/// while the high-water mark advances reports the new mark as its
/// `sim_us`; order- and thread-independent, so jobs-invariant.
pub fn set_span_sim_us(sim_us: u64) {
    SIM_MAX.fetch_max(sim_us, Ordering::Relaxed);
}

/// All recorded spans, merged in submission order.
pub fn spans() -> Vec<SpanRecord> {
    sink::merged_shards()
        .into_iter()
        .flat_map(|s| s.spans)
        .collect()
}

static TASKS: AtomicU64 = AtomicU64::new(0);
static TASK_WALL_US: AtomicU64 = AtomicU64::new(0);

/// Accumulates one parallel task's wall time (called by `nvfs-par`).
pub fn add_task_wall(wall: std::time::Duration) {
    TASKS.fetch_add(1, Ordering::Relaxed);
    TASK_WALL_US.fetch_add(wall.as_micros() as u64, Ordering::Relaxed);
}

/// `(task count, cumulative wall µs)` accumulated by [`add_task_wall`].
pub fn task_totals() -> (u64, u64) {
    (
        TASKS.load(Ordering::Relaxed),
        TASK_WALL_US.load(Ordering::Relaxed),
    )
}

/// Zeroes the per-task totals and the sim high-water mark (part of
/// [`crate::reset`]).
pub(crate) fn reset_task_totals() {
    TASKS.store(0, Ordering::Relaxed);
    TASK_WALL_US.store(0, Ordering::Relaxed);
    SIM_MAX.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{reset, test_lock};

    #[test]
    fn nested_spans_do_not_double_count() {
        let _g = test_lock();
        reset();
        let (_, outer) = timed("outer", || {
            let (_, inner) = timed("inner", || {
                std::thread::sleep(std::time::Duration::from_millis(20))
            });
            assert!(inner.wall_ms >= 18.0, "inner {}", inner.wall_ms);
        });
        assert!(outer.wall_ms >= 18.0);
        // The outer span's exclusive time excludes the inner sleep.
        assert!(
            outer.excl_ms < outer.wall_ms - 15.0,
            "excl {} vs wall {}",
            outer.excl_ms,
            outer.wall_ms
        );
        let names: Vec<String> = spans().into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["inner".to_string(), "outer".to_string()]);
        reset();
    }

    #[test]
    fn sim_time_attaches_to_open_spans() {
        let _g = test_lock();
        reset();
        reset_task_totals();
        // Noted from another thread (as under par_map): still attaches.
        let (_, rec) = timed("phase", || {
            std::thread::spawn(|| set_span_sim_us(1_000_000))
                .join()
                .unwrap();
        });
        assert_eq!(rec.sim_us, 1_000_000);
        // A later span during which the mark does not advance reports 0.
        let (_, idle) = timed("idle", || set_span_sim_us(500));
        assert_eq!(idle.sim_us, 0);
        reset();
        reset_task_totals();
    }

    #[test]
    fn task_totals_accumulate() {
        let _g = test_lock();
        reset_task_totals();
        add_task_wall(std::time::Duration::from_micros(500));
        add_task_wall(std::time::Duration::from_micros(300));
        assert_eq!(task_totals(), (2, 800));
        reset_task_totals();
    }
}
