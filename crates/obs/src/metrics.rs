//! The always-on metrics registry: counters, gauges, and fixed-bucket
//! histograms.
//!
//! Metrics are identified by `&'static str` names (dotted, lowercase:
//! `core.server_write_bytes`, `lfs.segments_written`). Recording writes to
//! the calling thread's shard (no global lock on the hot path); snapshots
//! merge shards in submission order — see [`crate::sink`] — so a snapshot
//! is byte-identical at any `--jobs` count.
//!
//! Merge semantics per kind:
//!
//! * **counters** — summed (order-independent);
//! * **gauges** — last write in submission order wins;
//! * **histograms** — per-bucket sums. Buckets are powers of two: bucket
//!   `i` counts values of bit-length `i` (zero lands in bucket 0), so two
//!   runs can disagree on a bucket count only if they recorded different
//!   values.
//!
//! Wall-clock time must never be recorded here: it would break the
//! jobs-invariance contract. Timings belong to [`crate::timing`], which
//! keeps them in the manifest's volatile `meta` section.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::sink::{self, HISTO_BUCKETS};

/// Adds `n` to the counter `name`.
#[inline]
pub fn counter_add(name: &'static str, n: u64) {
    if n == 0 {
        return;
    }
    sink::with_local(|l| *l.counters.entry(name).or_insert(0) += n);
}

/// Sets the gauge `name` to `v` (last write in submission order wins).
#[inline]
pub fn gauge_set(name: &'static str, v: u64) {
    sink::with_local(|l| l.gauges.push((name, v)));
}

/// Records `v` into the power-of-two histogram `name`.
#[inline]
pub fn histogram_record(name: &'static str, v: u64) {
    let bucket = (u64::BITS - v.leading_zeros()) as usize;
    sink::with_local(|l| {
        l.histos
            .entry(name)
            .or_insert_with(|| Box::new([0; HISTO_BUCKETS]))[bucket] += 1;
    });
}

/// A merged, deterministic view of every metric recorded so far.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Final gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms by name: `(bucket_upper_bound, count)` for each
    /// non-empty bucket, in bucket order.
    pub histos: BTreeMap<String, Vec<(u64, u64)>>,
}

impl Snapshot {
    /// Merges all flushed shards (plus the calling thread's buffer) in
    /// submission order.
    pub fn take() -> Snapshot {
        let mut snap = Snapshot::default();
        for shard in sink::merged_shards() {
            for (name, n) in &shard.counters {
                *snap.counters.entry(name.to_string()).or_insert(0) += n;
            }
            for (name, v) in &shard.gauges {
                snap.gauges.insert(name.to_string(), *v);
            }
            for (name, buckets) in &shard.histos {
                let entry = snap.histos.entry(name.to_string()).or_default();
                for (i, &count) in buckets.iter().enumerate() {
                    if count == 0 {
                        continue;
                    }
                    let bound = bucket_bound(i);
                    match entry.iter_mut().find(|(b, _)| *b == bound) {
                        Some((_, c)) => *c += count,
                        None => entry.push((bound, count)),
                    }
                }
                entry.sort_by_key(|&(b, _)| b);
            }
        }
        snap
    }

    /// Renders the snapshot as a canonical JSON object (sorted names,
    /// fixed key order) — the form embedded in run manifests and compared
    /// byte-for-byte by the jobs-invariance tests.
    pub fn render_json(&self, indent: &str) -> String {
        let mut out = String::new();
        let pad = indent;
        out.push_str("{\n");
        let _ = write!(out, "{pad}  \"counters\": {{");
        render_map(&mut out, pad, &self.counters, |v| v.to_string());
        let _ = write!(out, "}},\n{pad}  \"gauges\": {{");
        render_map(&mut out, pad, &self.gauges, |v| v.to_string());
        let _ = write!(out, "}},\n{pad}  \"histograms\": {{");
        render_map(&mut out, pad, &self.histos, |buckets| {
            let cells: Vec<String> = buckets.iter().map(|(b, c)| format!("[{b}, {c}]")).collect();
            format!("[{}]", cells.join(", "))
        });
        let _ = write!(out, "}}\n{pad}}}");
        out
    }
}

fn render_map<V>(
    out: &mut String,
    pad: &str,
    map: &BTreeMap<String, V>,
    mut render: impl FnMut(&V) -> String,
) {
    let mut first = true;
    for (name, v) in map {
        let sep = if first { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n{pad}    \"{}\": {}",
            crate::json::escape(name),
            render(v)
        );
        first = false;
    }
    if !map.is_empty() {
        let _ = write!(out, "\n{pad}  ");
    }
}

/// Inclusive upper bound of histogram bucket `i`.
fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{reset, task_frame, test_lock};

    #[test]
    fn counters_sum_and_gauges_take_last_in_submission_order() {
        let _g = test_lock();
        reset();
        counter_add("m.test.c", 2);
        task_frame(&[], 0, || {
            counter_add("m.test.c", 3);
            gauge_set("m.test.g", 10);
        });
        task_frame(&[], 1, || gauge_set("m.test.g", 20));
        let snap = Snapshot::take();
        assert_eq!(snap.counters["m.test.c"], 5);
        assert_eq!(snap.gauges["m.test.g"], 20, "task 1 submitted after task 0");
        reset();
    }

    #[test]
    fn zero_counter_add_records_nothing() {
        let _g = test_lock();
        reset();
        counter_add("m.test.zero", 0);
        assert!(Snapshot::take().counters.is_empty());
        reset();
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let _g = test_lock();
        reset();
        for v in [0, 1, 2, 3, 4, 1000, 1024] {
            histogram_record("m.test.h", v);
        }
        let snap = Snapshot::take();
        let h = &snap.histos["m.test.h"];
        // 0 -> [0], 1 -> [1], 2,3 -> [3], 4 -> [7], 1000 -> [1023], 1024 -> [2047]
        assert_eq!(
            h,
            &vec![(0, 1), (1, 1), (3, 2), (7, 1), (1023, 1), (2047, 1)]
        );
        reset();
    }

    #[test]
    fn snapshot_render_is_stable() {
        let _g = test_lock();
        reset();
        counter_add("m.test.b", 1);
        counter_add("m.test.a", 1);
        let a = Snapshot::take().render_json("");
        let b = Snapshot::take().render_json("");
        assert_eq!(a, b);
        let ai = a.find("m.test.a").unwrap();
        let bi = a.find("m.test.b").unwrap();
        assert!(ai < bi, "names render sorted");
        reset();
    }
}
