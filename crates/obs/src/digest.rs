//! The workspace's one config/artifact hashing primitive.
//!
//! Every digest in the toolkit — config fingerprints in run manifests and
//! the `nvfs bench` cross-job-count artifact gate — goes through this
//! 64-bit FNV-1a so the two can never disagree about what "the same
//! configuration" means. FNV-1a is not cryptographic; it only needs to be
//! stable across platforms and sensitive to any byte change, which it is.

/// Streaming 64-bit FNV-1a hasher.
///
/// # Examples
///
/// ```
/// use nvfs_obs::digest::Digest;
///
/// let mut d = Digest::new();
/// d.update("model=unified");
/// d.update(" nvram=1048576");
/// assert_eq!(d.clone().hex(), Digest::of_str("model=unified nvram=1048576").hex());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Digest {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Digest {
    /// A fresh hasher.
    pub fn new() -> Self {
        Digest { state: FNV_OFFSET }
    }

    /// Hashes one string in a single call.
    pub fn of_str(s: &str) -> Self {
        let mut d = Digest::new();
        d.update(s);
        d
    }

    /// Feeds `s` into the hash.
    pub fn update(&mut self, s: &str) {
        for &b in s.as_bytes() {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// The digest as a fixed-width lowercase hex string.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.state)
    }

    /// The raw 64-bit digest value — e.g. the checksum an LFS segment
    /// summary block stores. `hex()` is this value formatted.
    pub fn value(&self) -> u64 {
        self.state
    }
}

impl Default for Digest {
    fn default() -> Self {
        Digest::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(Digest::of_str("").hex(), "cbf29ce484222325");
        assert_eq!(Digest::of_str("a").hex(), "af63dc4c8601ec8c");
        assert_eq!(Digest::of_str("foobar").hex(), "85944171f73967e8");
    }

    #[test]
    fn sensitive_to_any_change() {
        assert_ne!(
            Digest::of_str("seed=42").hex(),
            Digest::of_str("seed=43").hex()
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let mut d = Digest::new();
        d.update("abc");
        d.update("def");
        assert_eq!(d.hex(), Digest::of_str("abcdef").hex());
    }
}
