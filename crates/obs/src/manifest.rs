//! Run manifests: a machine-readable record of what a command ran and
//! what it measured.
//!
//! Every `nvfs` subcommand can emit one via `--manifest-out`. The JSON
//! document has two top-level sections with deliberately different
//! contracts:
//!
//! * `run` — **deterministic**: command, scale, seed, config digest,
//!   phase names with simulated time, and the full metric snapshot. For a
//!   fixed command line this section is byte-identical across `--jobs`
//!   counts, runs, and machines; golden files and `nvfs obs diff` gate on
//!   it.
//! * `meta` — **volatile by design**: git revision, job count,
//!   wall-clock per phase, parallel-task totals, traced event count.
//!   Diffs report it informationally and never fail on it.
//!
//! Commands describe themselves through the process-wide context
//! ([`set_scale`], [`set_seed`], [`set_config_digest`]) before
//! [`RunManifest::collect`] snapshots everything.

use std::fmt::Write as _;
use std::sync::Mutex;

use crate::json::{self, Json};
use crate::metrics::Snapshot;
use crate::timing::SpanRecord;

#[derive(Debug, Clone, Default)]
struct Context {
    scale: Option<String>,
    seed: Option<u64>,
    config_digest: Option<String>,
}

static CTX: Mutex<Option<Context>> = Mutex::new(None);

fn with_ctx<R>(f: impl FnOnce(&mut Context) -> R) -> R {
    let mut guard = CTX.lock().expect("manifest context poisoned");
    f(guard.get_or_insert_with(Context::default))
}

/// Records the workload scale (`tiny` / `small` / `paper`) for the manifest.
pub fn set_scale(scale: &str) {
    with_ctx(|c| c.scale = Some(scale.to_string()));
}

/// Records the seed the command ran with.
pub fn set_seed(seed: u64) {
    with_ctx(|c| c.seed = Some(seed));
}

/// Records the canonical config digest (hex from [`crate::digest::Digest`]).
pub fn set_config_digest(hex: String) {
    with_ctx(|c| c.config_digest = Some(hex));
}

/// Clears the context (part of [`crate::reset`]).
pub(crate) fn reset_context() {
    *CTX.lock().expect("manifest context poisoned") = None;
}

/// A collected manifest, ready to render.
#[derive(Debug, Clone)]
pub struct RunManifest {
    /// The subcommand that ran.
    pub command: String,
    /// Workload scale, if the command has one.
    pub scale: Option<String>,
    /// Seed, if the command has one.
    pub seed: Option<u64>,
    /// Canonical configuration digest, if the command set one.
    pub config_digest: Option<String>,
    /// Deterministic metric snapshot.
    pub metrics: Snapshot,
    /// Completed spans in submission order.
    pub spans: Vec<SpanRecord>,
    /// Job count the process ran with (meta).
    pub jobs: usize,
    /// Git revision of the working tree, or `"unknown"` (meta).
    pub git_rev: String,
    /// Number of traced events (meta: depends on `--trace-out`).
    pub trace_events: u64,
    /// `(count, cumulative wall µs)` of parallel tasks (meta).
    pub par_tasks: (u64, u64),
}

impl RunManifest {
    /// Snapshots the global observability state into a manifest.
    pub fn collect(command: &str, jobs: usize) -> RunManifest {
        let (scale, seed, config_digest) =
            with_ctx(|c| (c.scale.clone(), c.seed, c.config_digest.clone()));
        RunManifest {
            command: command.to_string(),
            scale,
            seed,
            config_digest,
            metrics: Snapshot::take(),
            spans: crate::timing::spans(),
            jobs,
            git_rev: git_rev(),
            trace_events: crate::events::count(),
            par_tasks: crate::timing::task_totals(),
        }
    }

    /// Renders the deterministic `run` section (canonical form: fixed key
    /// order, sorted metric names). Byte-identical at any `--jobs` count.
    pub fn render_run(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "    \"command\": \"{}\",", json::escape(&self.command));
        if let Some(scale) = &self.scale {
            let _ = writeln!(out, "    \"scale\": \"{}\",", json::escape(scale));
        }
        if let Some(seed) = self.seed {
            let _ = writeln!(out, "    \"seed\": {seed},");
        }
        if let Some(digest) = &self.config_digest {
            let _ = writeln!(out, "    \"config_digest\": \"{}\",", json::escape(digest));
        }
        out.push_str("    \"phases\": [");
        for (i, span) in self.spans.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n      {{\"name\": \"{}\", \"sim_us\": {}}}",
                json::escape(&span.name),
                span.sim_us
            );
        }
        if !self.spans.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("],\n");
        let _ = writeln!(out, "    \"metrics\": {}", self.metrics.render_json("    "));
        out.push_str("  }");
        out
    }

    /// Renders the full manifest document (`meta` + `run`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"nvfs_manifest\": 1,\n  \"meta\": {\n");
        let _ = writeln!(out, "    \"git_rev\": \"{}\",", json::escape(&self.git_rev));
        let _ = writeln!(out, "    \"jobs\": {},", self.jobs);
        let _ = writeln!(out, "    \"trace_events\": {},", self.trace_events);
        let _ = writeln!(out, "    \"par_tasks\": {},", self.par_tasks.0);
        let _ = writeln!(out, "    \"par_task_wall_us\": {},", self.par_tasks.1);
        out.push_str("    \"phases\": [");
        for (i, span) in self.spans.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n      {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"excl_ms\": {:.3}}}",
                json::escape(&span.name),
                span.wall_ms,
                span.excl_ms
            );
        }
        if !self.spans.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("]\n  },\n");
        let _ = write!(out, "  \"run\": {}\n}}\n", self.render_run());
        out
    }
}

/// Best-effort git revision of the current working tree: follows
/// `.git/HEAD` one level without shelling out. Returns `"unknown"` when
/// not in a repository.
pub fn git_rev() -> String {
    let head = match std::fs::read_to_string(".git/HEAD") {
        Ok(h) => h,
        Err(_) => return "unknown".to_string(),
    };
    let head = head.trim();
    if let Some(reference) = head.strip_prefix("ref: ") {
        if let Ok(rev) = std::fs::read_to_string(format!(".git/{reference}")) {
            return rev.trim().to_string();
        }
        // Packed refs: scan .git/packed-refs for the ref name.
        if let Ok(packed) = std::fs::read_to_string(".git/packed-refs") {
            for line in packed.lines() {
                if let Some(rev) = line.strip_suffix(reference) {
                    return rev.trim().to_string();
                }
            }
        }
        return "unknown".to_string();
    }
    head.to_string()
}

/// Outcome of comparing two manifests.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Whether the deterministic `run` sections are identical.
    pub runs_match: bool,
    /// Human-readable difference lines (`run:` prefixed lines are
    /// failures; `meta:` lines are informational).
    pub lines: Vec<String>,
}

impl DiffReport {
    /// Renders the report for terminal output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "run sections {}",
            if self.runs_match { "MATCH" } else { "DIFFER" }
        );
        out
    }
}

/// Parses a manifest document, returning `(meta, run)`.
pub fn parse_manifest(text: &str) -> Result<(Json, Json), String> {
    let doc = json::parse(text)?;
    if doc.get("nvfs_manifest").and_then(Json::as_u64) != Some(1) {
        return Err("not an nvfs manifest (missing \"nvfs_manifest\": 1)".into());
    }
    let meta = doc
        .get("meta")
        .cloned()
        .ok_or("manifest has no meta section")?;
    let run = doc
        .get("run")
        .cloned()
        .ok_or("manifest has no run section")?;
    Ok((meta, run))
}

/// Diffs two manifest documents: config drift and metric deltas from the
/// deterministic `run` sections, wall-clock movement from `meta`
/// (informational only).
pub fn diff(a_text: &str, b_text: &str) -> Result<DiffReport, String> {
    let (a_meta, a_run) = parse_manifest(a_text)?;
    let (b_meta, b_run) = parse_manifest(b_text)?;
    let mut lines = Vec::new();

    for key in ["command", "scale", "seed", "config_digest"] {
        let (av, bv) = (a_run.get(key), b_run.get(key));
        if av != bv {
            lines.push(format!(
                "run: {key} drift: {} -> {}",
                render_opt(av),
                render_opt(bv)
            ));
        }
    }

    let phase_names = |run: &Json| -> Vec<String> {
        match run.get("phases") {
            Some(Json::Arr(items)) => items
                .iter()
                .filter_map(|p| p.get("name").and_then(Json::as_str).map(String::from))
                .collect(),
            _ => Vec::new(),
        }
    };
    let (ap, bp) = (phase_names(&a_run), phase_names(&b_run));
    if ap != bp {
        lines.push(format!("run: phases drift: {ap:?} -> {bp:?}"));
    }

    for family in ["counters", "gauges"] {
        let collect = |run: &Json| -> Vec<(String, u64)> {
            run.get("metrics")
                .and_then(|m| m.get(family))
                .and_then(Json::members)
                .map(|members| {
                    members
                        .iter()
                        .filter_map(|(k, v)| v.as_u64().map(|n| (k.clone(), n)))
                        .collect()
                })
                .unwrap_or_default()
        };
        let (am, bm) = (collect(&a_run), collect(&b_run));
        let mut names: Vec<&String> = am.iter().chain(&bm).map(|(k, _)| k).collect();
        names.sort();
        names.dedup();
        for name in names {
            let av = am.iter().find(|(k, _)| k == name).map(|(_, v)| *v);
            let bv = bm.iter().find(|(k, _)| k == name).map(|(_, v)| *v);
            if av != bv {
                let delta = bv.unwrap_or(0) as i128 - av.unwrap_or(0) as i128;
                lines.push(format!(
                    "run: {family}.{name}: {} -> {} ({}{delta})",
                    av.map_or("absent".into(), |v| v.to_string()),
                    bv.map_or("absent".into(), |v| v.to_string()),
                    if delta >= 0 { "+" } else { "" },
                ));
            }
        }
    }
    let histos = |run: &Json| {
        run.get("metrics")
            .and_then(|m| m.get("histograms"))
            .cloned()
    };
    if histos(&a_run) != histos(&b_run) {
        lines.push("run: histograms differ".to_string());
    }

    let runs_match = a_run == b_run;
    if !runs_match && lines.is_empty() {
        lines.push("run: sections differ structurally".to_string());
    }

    // Informational wall-clock movement per phase.
    let walls = |meta: &Json| -> Vec<(String, f64)> {
        match meta.get("phases") {
            Some(Json::Arr(items)) => items
                .iter()
                .filter_map(|p| {
                    let name = p.get("name")?.as_str()?.to_string();
                    let ms = p.get("wall_ms")?.as_f64()?;
                    Some((name, ms))
                })
                .collect(),
            _ => Vec::new(),
        }
    };
    for (name, a_ms) in walls(&a_meta) {
        if let Some((_, b_ms)) = walls(&b_meta).into_iter().find(|(n, _)| *n == name) {
            lines.push(format!("meta: phase {name}: {a_ms:.1} ms -> {b_ms:.1} ms"));
        }
    }
    if a_meta.get("jobs") != b_meta.get("jobs") {
        lines.push(format!(
            "meta: jobs: {} -> {}",
            render_opt(a_meta.get("jobs")),
            render_opt(b_meta.get("jobs"))
        ));
    }

    Ok(DiffReport { runs_match, lines })
}

fn render_opt(v: Option<&Json>) -> String {
    v.map_or("absent".to_string(), |v| v.to_string())
}

/// Pretty-prints a parsed manifest for `nvfs obs show`.
pub fn render_summary(text: &str) -> Result<String, String> {
    let (meta, run) = parse_manifest(text)?;
    let mut out = String::new();
    let field = |run: &Json, key: &str| {
        run.get(key).map_or("-".to_string(), |v| {
            v.to_string().trim_matches('"').to_string()
        })
    };
    let _ = writeln!(out, "command:       {}", field(&run, "command"));
    let _ = writeln!(out, "scale:         {}", field(&run, "scale"));
    let _ = writeln!(out, "seed:          {}", field(&run, "seed"));
    let _ = writeln!(out, "config digest: {}", field(&run, "config_digest"));
    let _ = writeln!(out, "git rev:       {}", field(&meta, "git_rev"));
    let _ = writeln!(out, "jobs:          {}", field(&meta, "jobs"));
    let _ = writeln!(out, "trace events:  {}", field(&meta, "trace_events"));
    if let Some(Json::Arr(phases)) = meta.get("phases") {
        if !phases.is_empty() {
            let _ = writeln!(out, "phases:");
            for p in phases {
                let _ = writeln!(
                    out,
                    "  {:<16} {:>10} ms wall {:>10} ms excl",
                    p.get("name").and_then(Json::as_str).unwrap_or("?"),
                    p.get("wall_ms")
                        .and_then(Json::as_f64)
                        .map_or("-".into(), |v| format!("{v:.1}")),
                    p.get("excl_ms")
                        .and_then(Json::as_f64)
                        .map_or("-".into(), |v| format!("{v:.1}")),
                );
            }
        }
    }
    if let Some(counters) = run
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(Json::members)
    {
        let _ = writeln!(out, "counters:");
        for (name, v) in counters {
            let _ = writeln!(out, "  {:<36} {}", name, v);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{reset, test_lock};

    fn sample(seed: u64, extra_counter: u64) -> String {
        reset();
        set_scale("tiny");
        set_seed(seed);
        set_config_digest(crate::digest::Digest::of_str(&format!("seed={seed}")).hex());
        crate::metrics::counter_add("t.manifest.bytes", 100 + extra_counter);
        crate::timing::span("phase-a", || {});
        RunManifest::collect("faults", 4).render()
    }

    #[test]
    fn manifest_parses_and_summarizes() {
        let _g = test_lock();
        let text = sample(42, 0);
        let (meta, run) = parse_manifest(&text).expect("parses");
        assert_eq!(run.get("command").and_then(Json::as_str), Some("faults"));
        assert_eq!(run.get("seed").and_then(Json::as_u64), Some(42));
        assert_eq!(meta.get("jobs").and_then(Json::as_u64), Some(4));
        let summary = render_summary(&text).unwrap();
        assert!(summary.contains("command:       faults"));
        assert!(summary.contains("t.manifest.bytes"));
        reset();
    }

    #[test]
    fn identical_manifests_match() {
        let _g = test_lock();
        let a = sample(42, 0);
        let b = sample(42, 0);
        let report = diff(&a, &b).unwrap();
        assert!(report.runs_match, "{}", report.render());
        reset();
    }

    #[test]
    fn diff_reports_config_drift_and_metric_deltas() {
        let _g = test_lock();
        let a = sample(42, 0);
        let b = sample(43, 5);
        let report = diff(&a, &b).unwrap();
        assert!(!report.runs_match);
        let text = report.render();
        assert!(text.contains("seed drift"), "{text}");
        assert!(text.contains("config_digest drift"), "{text}");
        assert!(
            text.contains("counters.t.manifest.bytes: 100 -> 105 (+5)"),
            "{text}"
        );
        reset();
    }

    #[test]
    fn non_manifest_input_is_rejected() {
        assert!(parse_manifest("{\"x\": 1}").is_err());
        assert!(parse_manifest("not json").is_err());
    }
}
