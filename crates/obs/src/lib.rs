//! # nvfs-obs — deterministic observability for the nvfs toolkit
//!
//! A zero-dependency metrics/tracing/manifest layer with one governing
//! rule: **nothing observable depends on the job count**. Simulation
//! crates record counters, gauges, histograms, and typed events into
//! per-task shards ([`sink`]); snapshots merge those shards in submission
//! order, so `--jobs 8` produces byte-identical metric snapshots, event
//! streams, and manifest `run` sections to `--jobs 1`.
//!
//! The pieces:
//!
//! * [`metrics`] — always-on counters / gauges / power-of-two histograms;
//! * [`events`] — opt-in typed event traces (`--trace-out`), JSONL output;
//! * [`timing`] — nesting-safe wall-clock spans (exclusive time fixes the
//!   old bench double-count); wall time stays out of the registry;
//! * [`digest`] — the workspace's single FNV-1a config/artifact hasher;
//! * [`manifest`] — `RunManifest` with a deterministic `run` section and a
//!   volatile `meta` section, plus parse/diff for `nvfs obs`;
//! * [`json`] — the minimal parser/renderer backing show/diff;
//! * [`sink`] — the shard machinery (`task_frame` is called by `nvfs-par`
//!   around every task).
//!
//! All state is process-global; a CLI invocation is one run. [`reset`]
//! clears everything (tests and multi-run processes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
pub mod events;
pub mod json;
pub mod manifest;
pub mod metrics;
pub mod sink;
pub mod timing;

pub use events::{event, set_trace_enabled, trace_enabled};
pub use manifest::RunManifest;
pub use metrics::{counter_add, gauge_set, histogram_record, Snapshot};
pub use sink::{flush_local, task_frame, task_path};
pub use timing::{span, timed};

/// Clears all observability state: shards, thread-local buffers, parallel
/// task totals, and the manifest context. Tracing enablement is left as
/// set.
pub fn reset() {
    sink::reset();
    timing::reset_task_totals();
}
