//! Minimal JSON: just enough to write manifests and read them back for
//! `nvfs obs show` / `nvfs obs diff`. The workspace builds offline, so no
//! serde; the grammar here covers exactly what this toolkit emits
//! (objects, arrays, strings, integers/floats, bools, null) and rejects
//! anything malformed with a byte-offset error.

use std::fmt;

/// A parsed JSON value. Object keys keep insertion order (manifests are
/// rendered with a fixed key order; preserving it makes re-rendering
/// canonical).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64; manifest numbers are integers or
    /// millisecond floats, both exact enough in f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an f64, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a u64, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Object members, if the value is an object.
    pub fn members(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    /// Canonical single-line rendering (insertion order preserved).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write!(f, "\"{}\"", escape(s)),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "\"{}\": {v}", escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Escapes a string for embedding in a JSON literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses a JSON document, requiring it to span the whole input.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_manifest_shapes() {
        let text = r#"{"a": 1, "b": [1, 2.5, "x"], "c": {"d": true, "e": null}}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.to_string(), text);
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("c").unwrap().get("d"), Some(&Json::Bool(true)));
    }

    #[test]
    fn preserves_key_order() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<&str> = v
            .members()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a"]);
    }

    #[test]
    fn escapes_round_trip() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
        // Control characters re-render as \u escapes.
        assert_eq!(v.to_string(), "\"a\\\"b\\\\c\\u000adA\"");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "12x", "{\"a\":1} trailing"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parses_whitespace_and_empty_containers() {
        assert_eq!(parse(" { } ").unwrap(), Json::Obj(vec![]));
        assert_eq!(parse("[\n]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("-3.5").unwrap(), Json::Num(-3.5));
    }
}
