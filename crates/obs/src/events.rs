//! The opt-in structured event-trace layer.
//!
//! Instrumented code emits **typed events** — `write_back`, `cache_evict`,
//! `seg_write`, `fault_fired`, `span` — tagged with simulated time and a
//! small set of fields. Tracing is off by default: [`event`] checks one
//! relaxed atomic load and returns a no-op builder, so disabled call sites
//! cost a branch (callers must not format strings before the builder gate;
//! field values are plain integers and `&'static str`s precisely so
//! there's nothing to precompute).
//!
//! When enabled (`--trace-out`), events buffer in the per-task shards and
//! [`render_jsonl`] merges them in submission order, stably sorts by
//! simulated time, and assigns final sequence numbers — producing a JSONL
//! stream that is byte-identical at any `--jobs` count.
//!
//! # Event schema
//!
//! One JSON object per line: `{"seq": N, "t_us": N, "kind": "...",
//! "<field>": ...}`. Kinds and fields in use:
//!
//! | kind             | fields                                         |
//! |------------------|------------------------------------------------|
//! | `span`           | `name`, `phase` (`begin`/`end`)                |
//! | `write_back`     | `cause`, `client`, `file`, `bytes`             |
//! | `cache_evict`    | `client`, `file`, `dirty` (0/1)                |
//! | `seg_write`      | `cause`, `seg`, `data_bytes`, `files`, `partial` |
//! | `fault_fired`    | `fault` (kind), `client`                       |
//! | `recovery_drain` | `client`, `bytes`, `lost_bytes`                |

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::sink;

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns the event-trace layer on or off (off by default).
pub fn set_trace_enabled(on: bool) {
    TRACE_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether events are currently recorded.
#[inline]
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// A field value: integers or static strings only, so emission never
/// allocates until the event is actually recorded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Val {
    /// Unsigned integer field.
    U64(u64),
    /// Static string field (event vocabulary, causes, names).
    Str(&'static str),
    /// Owned string field (span names arriving as `&str`).
    Owned(String),
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Simulated time in microseconds (0 for events outside sim time,
    /// e.g. spans).
    pub t_us: u64,
    /// Event kind (see the module-level schema table).
    pub kind: &'static str,
    /// Ordered fields.
    pub fields: Vec<(&'static str, Val)>,
}

/// Builder returned by [`event`]; a no-op shell when tracing is off.
#[must_use = "call .emit() to record the event"]
pub struct EventBuilder {
    ev: Option<Event>,
}

impl EventBuilder {
    /// Attaches an unsigned integer field.
    #[inline]
    pub fn u64(mut self, key: &'static str, v: u64) -> Self {
        if let Some(ev) = &mut self.ev {
            ev.fields.push((key, Val::U64(v)));
        }
        self
    }

    /// Attaches a static string field.
    #[inline]
    pub fn str(mut self, key: &'static str, v: &'static str) -> Self {
        if let Some(ev) = &mut self.ev {
            ev.fields.push((key, Val::Str(v)));
        }
        self
    }

    /// Attaches an owned string field (allocates only when enabled).
    #[inline]
    pub fn owned(mut self, key: &'static str, v: &str) -> Self {
        if let Some(ev) = &mut self.ev {
            ev.fields.push((key, Val::Owned(v.to_string())));
        }
        self
    }

    /// Records the event into the current task shard.
    #[inline]
    pub fn emit(self) {
        if let Some(ev) = self.ev {
            sink::with_local(|l| l.events.push(ev));
        }
    }
}

/// Starts an event of `kind` at simulated time `t_us`. Returns a no-op
/// builder when tracing is disabled.
#[inline]
pub fn event(kind: &'static str, t_us: u64) -> EventBuilder {
    EventBuilder {
        ev: trace_enabled().then(|| Event {
            t_us,
            kind,
            fields: Vec::new(),
        }),
    }
}

/// All recorded events in canonical order: shards merged in submission
/// order, then stably sorted by simulated time.
pub fn sorted() -> Vec<Event> {
    let mut events: Vec<Event> = sink::merged_shards()
        .into_iter()
        .flat_map(|s| s.events)
        .collect();
    events.sort_by_key(|e| e.t_us); // stable: submission order breaks ties
    events
}

/// Renders the canonical event stream as JSONL (one event per line, final
/// sequence numbers assigned after the sort).
pub fn render_jsonl() -> String {
    let mut out = String::new();
    for (seq, ev) in sorted().iter().enumerate() {
        let _ = write!(
            out,
            "{{\"seq\": {seq}, \"t_us\": {}, \"kind\": \"{}\"",
            ev.t_us, ev.kind
        );
        for (key, val) in &ev.fields {
            match val {
                Val::U64(v) => {
                    let _ = write!(out, ", \"{key}\": {v}");
                }
                Val::Str(s) => {
                    let _ = write!(out, ", \"{key}\": \"{}\"", crate::json::escape(s));
                }
                Val::Owned(s) => {
                    let _ = write!(out, ", \"{key}\": \"{}\"", crate::json::escape(s));
                }
            }
        }
        out.push_str("}\n");
    }
    out
}

/// Number of events recorded so far.
pub fn count() -> u64 {
    sink::merged_shards()
        .iter()
        .map(|s| s.events.len() as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{reset, task_frame, test_lock};

    #[test]
    fn disabled_tracing_records_nothing() {
        let _g = test_lock();
        reset();
        set_trace_enabled(false);
        event("write_back", 5).u64("bytes", 4096).emit();
        assert_eq!(count(), 0);
        reset();
    }

    #[test]
    fn events_sort_by_time_with_submission_order_ties() {
        let _g = test_lock();
        reset();
        set_trace_enabled(true);
        // Submitted out of task order on purpose: task 1 first.
        task_frame(&[], 1, || {
            event("seg_write", 10).str("cause", "fsync").emit();
            event("seg_write", 5).u64("seg", 1).emit();
        });
        task_frame(&[], 0, || event("seg_write", 5).u64("seg", 0).emit());
        set_trace_enabled(false);
        let evs = sorted();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].t_us, 5);
        // Tie at t=5: task 0 precedes task 1 in submission order.
        assert_eq!(evs[0].fields, vec![("seg", Val::U64(0))]);
        assert_eq!(evs[1].fields, vec![("seg", Val::U64(1))]);
        assert_eq!(evs[2].t_us, 10);
        let jsonl = render_jsonl();
        assert!(
            jsonl.starts_with("{\"seq\": 0, \"t_us\": 5, \"kind\": \"seg_write\", \"seg\": 0}\n")
        );
        assert_eq!(jsonl.lines().count(), 3);
        reset();
    }
}
