//! Shard machinery shared by the metrics registry, the event-trace layer,
//! and the span timers.
//!
//! Every recording call lands in a **thread-local buffer** tagged with the
//! current *task path* — the submission-order position of the enclosing
//! `nvfs-par` task, e.g. `[2, 5]` for item 5 of a `par_map` nested inside
//! item 2 of an outer one (the main thread records under the empty path).
//! A buffer is flushed to the global shard list when its task frame ends,
//! and merges happen in `(path, flush-sequence)` order, which equals
//! submission order. That single rule is what makes every snapshot
//! byte-identical at any `--jobs` count: a parallel run flushes exactly
//! the shards a sequential run does, just from different threads.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::events::Event;
use crate::timing::SpanRecord;

/// Power-of-two histogram bucket count: bucket `i` holds values whose
/// bit-length is `i` (bucket 0 holds the value zero).
pub(crate) const HISTO_BUCKETS: usize = 65;

/// One flushed task buffer, tagged for deterministic merging.
#[derive(Debug, Clone)]
pub(crate) struct Shard {
    /// Submission path of the task that produced this shard.
    pub path: Vec<u32>,
    /// Global flush sequence — tie-break for repeated flushes of the same
    /// path (only the main thread's root path flushes more than once, and
    /// it does so in program order).
    pub seq: u64,
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauge sets in recording order; merge applies them in shard order so
    /// the last write in submission order wins.
    pub gauges: Vec<(&'static str, u64)>,
    pub histos: BTreeMap<&'static str, Box<[u64; HISTO_BUCKETS]>>,
    pub events: Vec<Event>,
    pub spans: Vec<SpanRecord>,
}

impl Shard {
    fn new(path: Vec<u32>) -> Self {
        Shard {
            path,
            seq: 0,
            counters: BTreeMap::new(),
            gauges: Vec::new(),
            histos: BTreeMap::new(),
            events: Vec::new(),
            spans: Vec::new(),
        }
    }

    fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histos.is_empty()
            && self.events.is_empty()
            && self.spans.is_empty()
    }
}

thread_local! {
    static LOCAL: RefCell<Shard> = RefCell::new(Shard::new(Vec::new()));
}

static SHARDS: Mutex<Vec<Shard>> = Mutex::new(Vec::new());
static FLUSH_SEQ: AtomicU64 = AtomicU64::new(0);

/// Runs `f` against the current thread's buffer.
pub(crate) fn with_local<R>(f: impl FnOnce(&mut Shard) -> R) -> R {
    LOCAL.with(|l| f(&mut l.borrow_mut()))
}

/// The current task path (for handing to worker threads).
pub fn task_path() -> Vec<u32> {
    with_local(|l| l.path.clone())
}

/// Runs `f` in a fresh task frame at `base + [index]`, flushing the
/// frame's recordings to the global shard list when `f` returns.
///
/// `base` is the *submitting* context's path ([`task_path`] captured
/// before fan-out) so worker threads inherit the correct position even
/// though their own thread-local path is empty. `nvfs-par` calls this for
/// every `par_map` item on both its sequential and parallel paths, which
/// is what keeps shard layout independent of the job count.
pub fn task_frame<R>(base: &[u32], index: u32, f: impl FnOnce() -> R) -> R {
    let mut path = base.to_vec();
    path.push(index);
    let saved = with_local(|l| std::mem::replace(l, Shard::new(path)));
    let out = f();
    let fresh = with_local(|l| std::mem::replace(l, saved));
    flush_shard(fresh);
    out
}

/// Flushes the calling thread's buffer (keeping its path) so its contents
/// become visible to snapshots. Called automatically by every snapshot on
/// the snapshotting thread.
pub fn flush_local() {
    let shard = with_local(|l| {
        let path = l.path.clone();
        std::mem::replace(l, Shard::new(path))
    });
    flush_shard(shard);
}

fn flush_shard(mut shard: Shard) {
    if shard.is_empty() {
        return;
    }
    shard.seq = FLUSH_SEQ.fetch_add(1, Ordering::Relaxed);
    SHARDS.lock().expect("shard list poisoned").push(shard);
}

/// Clones the flushed shards in deterministic merge order.
pub(crate) fn merged_shards() -> Vec<Shard> {
    flush_local();
    let mut shards = SHARDS.lock().expect("shard list poisoned").clone();
    shards.sort_by(|a, b| a.path.cmp(&b.path).then(a.seq.cmp(&b.seq)));
    shards
}

/// Clears all recorded state: flushed shards and the calling thread's
/// buffer. Other threads' unflushed buffers are untouched (worker threads
/// only hold data inside task frames, which always flush).
pub fn reset() {
    SHARDS.lock().expect("shard list poisoned").clear();
    FLUSH_SEQ.store(0, Ordering::Relaxed);
    with_local(|l| {
        let path = l.path.clone();
        *l = Shard::new(path);
    });
    crate::manifest::reset_context();
}

#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_frames_tag_shards_with_submission_paths() {
        let _g = test_lock();
        reset();
        crate::metrics::counter_add("sink.test.root", 1);
        task_frame(&[], 1, || crate::metrics::counter_add("sink.test.t1", 10));
        task_frame(&[], 0, || {
            crate::metrics::counter_add("sink.test.t0", 5);
            let base = task_path();
            assert_eq!(base, vec![0]);
            task_frame(&base, 2, || crate::metrics::counter_add("sink.test.t02", 7));
        });
        let shards = merged_shards();
        let paths: Vec<Vec<u32>> = shards.iter().map(|s| s.path.clone()).collect();
        assert_eq!(
            paths,
            vec![vec![], vec![0], vec![0, 2], vec![1]],
            "shards merge in submission (path) order"
        );
        reset();
    }

    #[test]
    fn reset_clears_everything() {
        let _g = test_lock();
        reset();
        crate::metrics::counter_add("sink.test.gone", 3);
        reset();
        assert!(merged_shards().is_empty());
    }
}
